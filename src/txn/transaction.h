// Transaction: handle for one transaction instance.
//
// In the data-centric model (§3) a stream query is "a sequence of
// transactions": each BOT punctuation begins one, the enclosed stream
// elements become writes, and COMMIT/ROLLBACK punctuations end it. Ad-hoc
// queries use the same handle through the query-centric API.
//
// A transaction may be driven by several operators of the same topology
// (one per state), so the handle is thread-safe where that matters: write
// sets are per-state and status flags live in the latch-free StateContext.
//
// Memory discipline: everything a transaction accumulates (write sets,
// commit locks, snapshot cache, ...) lives in a TxnScratch that is POOLED
// PER TRANSACTION SLOT by the TransactionManager. A transaction slot is
// exclusively owned from BeginTransaction to EndTransaction, so the scratch
// needs no cross-transaction synchronization; at steady state every buffer
// has reached its high-water mark and Put/Get/commit bookkeeping runs
// without a single heap allocation.

#ifndef STREAMSI_TXN_TRANSACTION_H_
#define STREAMSI_TXN_TRANSACTION_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/latch.h"
#include "txn/state_context.h"
#include "txn/types.h"
#include "txn/write_set.h"

namespace streamsi {

/// Whole-transaction lifecycle (distinct from the per-state TxnStatus flags
/// the consistency protocol uses).
enum class TxnPhase : unsigned char {
  kRunning = 0,
  kCommitted = 1,
  kAborted = 2,
};

/// One lock held by a transaction (S2PL strictness list). The key is owned:
/// read locks are recorded for caller-provided key buffers that may die
/// before release.
struct HeldLock {
  StateId state;
  std::string key;
  bool exclusive;
};

/// One SI commit lock (First-Committer-Wins ownership). The key is a VIEW
/// into the write set that recorded it — valid until the scratch resets at
/// Finish, which happens strictly after ReleaseState unlocked it.
struct CommitLockRef {
  StateId state;
  std::string_view key;
  /// Store entry resolved when the lock was taken (opaque
  /// VersionedStore::EntryHandle; stable for the store's lifetime) — the
  /// release path unlocks through it without re-probing the bucket table.
  void* entry = nullptr;
};

/// Pooled per-slot transaction guts. All vectors keep their capacity and
/// all write sets keep their arenas across Reset(), so reuse is free.
struct TxnScratch {
  struct NamedWriteSet {
    StateId state = kInvalidStateId;
    std::unique_ptr<WriteSet> set;
  };

  /// The first `active_sets` entries are live for the current transaction;
  /// the tail is the pool of already-allocated write sets to retag.
  std::vector<NamedWriteSet> sets;
  std::size_t active_sets = 0;

  std::unordered_set<std::string> read_set;  ///< BOCC backward validation
  std::vector<HeldLock> held_locks;          ///< S2PL
  std::vector<CommitLockRef> commit_locks;   ///< SI First-Committer-Wins
  std::vector<std::pair<StateId, Timestamp>> snapshot_cache;

  void Reset() {
    for (std::size_t i = 0; i < active_sets; ++i) sets[i].set->Reset();
    active_sets = 0;
    read_set.clear();
    held_locks.clear();
    commit_locks.clear();
    snapshot_cache.clear();
  }
};

class Transaction {
 public:
  /// Created via TransactionManager::Begin(); takes the pre-acquired slot
  /// and the slot's pooled scratch.
  Transaction(StateContext* context, int slot, TxnId id, TxnScratch* scratch)
      : context_(context), slot_(slot), id_(id), scratch_(scratch) {}

  ~Transaction() {
    // Slot release is the TransactionManager's job (it knows about protocol
    // resources); assert in debug that it happened.
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  int slot() const { return slot_; }
  StateContext* context() { return context_; }

  TxnPhase phase() const { return phase_.load(std::memory_order_acquire); }
  void set_phase(TxnPhase phase) {
    phase_.store(phase, std::memory_order_release);
  }
  bool running() const { return phase() == TxnPhase::kRunning; }

  /// Read visibility (§3). Choose before the first read; switching later
  /// only affects subsequent reads.
  IsolationLevel isolation() const {
    return isolation_.load(std::memory_order_acquire);
  }
  void set_isolation(IsolationLevel level) {
    isolation_.store(level, std::memory_order_release);
  }

  /// Uncommitted write set for `state` (created on first touch, reusing a
  /// pooled one when available); registers the state access in the context.
  WriteSet& MutableWriteSet(StateId state) {
    std::lock_guard<SpinLock> guard(lock_);
    for (std::size_t i = 0; i < scratch_->active_sets; ++i) {
      if (scratch_->sets[i].state == state) return *scratch_->sets[i].set;
    }
    context_->RegisterStateAccess(slot_, state);
    if (scratch_->active_sets == scratch_->sets.size()) {
      scratch_->sets.push_back(
          TxnScratch::NamedWriteSet{state, std::make_unique<WriteSet>()});
    } else {
      // Retag a pooled (already Reset) write set for this state.
      scratch_->sets[scratch_->active_sets].state = state;
    }
    return *scratch_->sets[scratch_->active_sets++].set;
  }

  /// Read-only view (nullptr if the state was never written).
  const WriteSet* FindWriteSet(StateId state) const {
    std::lock_guard<SpinLock> guard(lock_);
    for (std::size_t i = 0; i < scratch_->active_sets; ++i) {
      if (scratch_->sets[i].state == state) return scratch_->sets[i].set.get();
    }
    return nullptr;
  }

  /// Visits every state with a non-empty write set (allocation-free; the
  /// commit path gathers them into stack storage).
  template <typename Fn>
  void ForEachWrittenState(Fn&& fn) const {
    std::lock_guard<SpinLock> guard(lock_);
    for (std::size_t i = 0; i < scratch_->active_sets; ++i) {
      if (!scratch_->sets[i].set->empty()) fn(scratch_->sets[i].state);
    }
  }

  /// States with a non-empty write set (allocating convenience; the commit
  /// path uses ForEachWrittenState instead).
  std::vector<StateId> WrittenStates() const {
    std::vector<StateId> result;
    ForEachWrittenState([&](StateId state) { result.push_back(state); });
    return result;
  }

  /// Clears all write sets (abort path). Keys recorded as commit-lock views
  /// become invalid — the manager releases locks before clearing.
  void ClearWriteSets() {
    std::lock_guard<SpinLock> guard(lock_);
    for (std::size_t i = 0; i < scratch_->active_sets; ++i) {
      scratch_->sets[i].set->Reset();
    }
  }

  // ------------------------------------------------ protocol bookkeeping ---

  /// BOCC read-set tracking: keys are namespaced "<state>/<key>".
  void RecordRead(StateId state, std::string_view key) {
    std::lock_guard<SpinLock> guard(lock_);
    scratch_->read_set.insert(NamespacedKey(state, key));
  }

  const std::unordered_set<std::string>& read_set() const {
    return scratch_->read_set;
  }

  void RecordLock(StateId state, std::string_view key, bool exclusive) {
    std::lock_guard<SpinLock> guard(lock_);
    scratch_->held_locks.push_back(
        HeldLock{state, std::string(key), exclusive});
  }

  std::vector<HeldLock> TakeHeldLocks() {
    std::lock_guard<SpinLock> guard(lock_);
    std::vector<HeldLock> taken;
    taken.swap(scratch_->held_locks);
    return taken;
  }

  /// SI commit locks (First-Committer-Wins ownership) to release after the
  /// group commit finished. `key` must point into this transaction's write
  /// set (stable until Finish).
  void RecordCommitLock(StateId state, std::string_view key,
                        void* entry = nullptr) {
    std::lock_guard<SpinLock> guard(lock_);
    scratch_->commit_locks.push_back(CommitLockRef{state, key, entry});
  }

  /// Batch variant for amortized validation: records `count` locks under
  /// ONE lock acquisition. `get(i)` must return a CommitLockRef-shaped
  /// {key, entry} pair for index i (keys pointing into the write set).
  template <typename Fn>
  void RecordCommitLocks(StateId state, std::size_t count, Fn&& get) {
    if (count == 0) return;
    std::lock_guard<SpinLock> guard(lock_);
    auto& locks = scratch_->commit_locks;
    locks.reserve(locks.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto [key, entry] = get(i);
      locks.push_back(CommitLockRef{state, key, entry});
    }
  }

  /// Releases (and removes) the commit locks recorded for `state`, invoking
  /// `unlock(lock)` for each CommitLockRef. In-place and allocation-free.
  template <typename Fn>
  void ReleaseCommitLocks(StateId state, Fn&& unlock) {
    std::lock_guard<SpinLock> guard(lock_);
    auto& locks = scratch_->commit_locks;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < locks.size(); ++i) {
      if (locks[i].state == state) {
        unlock(locks[i]);
      } else {
        locks[keep++] = locks[i];
      }
    }
    locks.resize(keep);
  }

  /// Per-state snapshot cache for the SI read path: the pinned snapshot of
  /// a state never changes within a transaction, so protocols cache it here
  /// instead of re-deriving it from the groups on every read.
  std::optional<Timestamp> CachedSnapshot(StateId state) const {
    std::lock_guard<SpinLock> guard(lock_);
    for (const auto& [sid, ts] : scratch_->snapshot_cache) {
      if (sid == state) return ts;
    }
    return std::nullopt;
  }

  void CacheSnapshot(StateId state, Timestamp ts) {
    std::lock_guard<SpinLock> guard(lock_);
    for (const auto& [sid, cached] : scratch_->snapshot_cache) {
      (void)cached;
      if (sid == state) return;  // first pin wins
    }
    scratch_->snapshot_cache.emplace_back(state, ts);
  }

  /// §4.3: "The operator that sets the last status flag to Commit becomes
  /// the coordinator and is responsible for the global commit." Exactly one
  /// caller wins this claim.
  bool TryClaimCoordinator() {
    bool expected = false;
    return coordinator_claimed_.compare_exchange_strong(
        expected, true, std::memory_order_acq_rel);
  }

  /// Resets the pooled scratch for the slot's next occupant. Called by the
  /// manager at Finish, strictly after every protocol release ran.
  void ResetScratch() {
    std::lock_guard<SpinLock> guard(lock_);
    scratch_->Reset();
  }

  static std::string NamespacedKey(StateId state, std::string_view key) {
    std::string out = std::to_string(state);
    out.push_back('/');
    out.append(key.data(), key.size());
    return out;
  }

 private:
  StateContext* context_;
  int slot_;
  TxnId id_;
  std::atomic<TxnPhase> phase_{TxnPhase::kRunning};
  std::atomic<IsolationLevel> isolation_{IsolationLevel::kSnapshot};
  std::atomic<bool> coordinator_claimed_{false};

  mutable SpinLock lock_;
  TxnScratch* scratch_;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_TRANSACTION_H_
