// ConcurrencyProtocol: the pluggable concurrency-control strategy of a
// transactional store.
//
// The paper's contribution is the MVCC/snapshot-isolation protocol (§4.2);
// S2PL and BOCC are the baselines of its evaluation (§5). All three share
// the same write-set/commit pipeline so that the consistency protocol for
// multiple states (§4.3) applies uniformly ("All concurrency control
// protocols use fundamentally the same consistency protocol").
//
// Commit pipeline (driven by TransactionManager for the whole state group):
//   PreCommit(txn)                         -- once per transaction
//   Validate(txn, store)                   -- per written state
//   Apply(txn, store, commit_ts, floor)    -- per written state
//   PostCommit(txn, commit_ts, committed)  -- once per transaction
//   ReleaseState(txn, store, committed)    -- per touched state
//   FinalizeTxn(txn, committed)            -- once per transaction
//
// `floor` is the lazily computed GC watermark: Apply resolves it only when
// a key's version array is full, so the common commit skips the
// transaction-table scans entirely.

#ifndef STREAMSI_TXN_PROTOCOL_H_
#define STREAMSI_TXN_PROTOCOL_H_

#include <functional>
#include <memory>
#include <string>

#include "txn/state_context.h"
#include "txn/transaction.h"
#include "txn/types.h"
#include "txn/versioned_store.h"

namespace streamsi {

class ConcurrencyProtocol {
 public:
  virtual ~ConcurrencyProtocol() = default;

  virtual ProtocolType type() const = 0;

  /// Transactional point read (reads-own-writes included).
  virtual Status Read(Transaction& txn, VersionedStore& store,
                      std::string_view key, std::string* value) = 0;

  /// Buffers an insert/update in the transaction's write set.
  virtual Status Write(Transaction& txn, VersionedStore& store,
                       std::string_view key, std::string_view value) = 0;

  /// Buffers a delete.
  virtual Status Delete(Transaction& txn, VersionedStore& store,
                        std::string_view key) = 0;

  /// Transactional scan (committed snapshot overlaid with own writes).
  virtual Status Scan(
      Transaction& txn, VersionedStore& store,
      const std::function<bool(std::string_view, std::string_view)>&
          callback) = 0;

  /// Transactional ordered range scan over [lo, hi) — empty `hi` means "to
  /// the end" — overlaid with own writes, keys visited in byte-wise order
  /// at a single §4.3 snapshot cut.
  ///
  /// MVCC/SI supports this today (SiProtocol override): a range read is
  /// just point visibility applied along the ordered key index, and the
  /// pinned snapshot already excludes phantoms by construction. The
  /// lock-based baselines do NOT: S2PL would need predicate/next-key range
  /// locks to keep a concurrent insert into [lo, hi) from creating a
  /// phantom between a scan and its re-read, and BOCC would need the range
  /// predicate folded into its validate-against-committed-write-sets check.
  /// Until that exists they inherit this default and refuse loudly rather
  /// than return unserializable results.
  virtual Status ScanRange(
      Transaction& txn, VersionedStore& store, std::string_view lo,
      std::string_view hi,
      const std::function<bool(std::string_view, std::string_view)>&
          callback) {
    (void)txn;
    (void)store;
    (void)lo;
    (void)hi;
    (void)callback;
    return Status::NotSupported(
        "range scans are not implemented for this concurrency protocol: "
        "phantom protection (predicate/range locking or range validation) "
        "is required first; use the MVCC protocol");
  }

  // ------------------------------------------------------ commit pipeline ---

  /// Entered once before any Validate (BOCC takes its global validation
  /// critical section here).
  virtual Status PreCommit(Transaction& txn) {
    (void)txn;
    return Status::OK();
  }

  /// Checks whether this transaction may commit its writes to `store`;
  /// may acquire commit-time resources that ReleaseState() frees.
  virtual Status Validate(Transaction& txn, VersionedStore& store) = 0;

  /// Installs the write set of `store` at `commit_ts`. `floor` resolves the
  /// GC watermark on demand (full version arrays only).
  virtual Status Apply(Transaction& txn, VersionedStore& store,
                       Timestamp commit_ts, GcFloor& floor);

  /// Left once after all Apply calls (or after a validation failure).
  virtual void PostCommit(Transaction& txn, Timestamp commit_ts,
                          bool committed) {
    (void)txn;
    (void)commit_ts;
    (void)committed;
  }

  /// Frees per-state commit resources.
  virtual void ReleaseState(Transaction& txn, VersionedStore& store,
                            bool committed) {
    (void)txn;
    (void)store;
    (void)committed;
  }

  /// Frees transaction-wide resources (S2PL lock release = strictness).
  virtual void FinalizeTxn(Transaction& txn, bool committed) {
    (void)txn;
    (void)committed;
  }

 protected:
  /// Shared Apply implementation: installs the effective write set in
  /// append order, persisting with one durable write at the end of the
  /// batch (one fsync per state commit).
  static Status ApplyWriteSet(Transaction& txn, VersionedStore& store,
                              Timestamp commit_ts, GcFloor& floor);

  /// Shared scan: committed snapshot at `read_ts` overlaid with the
  /// transaction's own writes.
  static Status ScanWithOverlay(
      Transaction& txn, VersionedStore& store, Timestamp read_ts,
      const std::function<bool(std::string_view, std::string_view)>&
          callback);

  /// Shared ordered range scan: committed [lo, hi) snapshot at `read_ts`
  /// merged in key order with the transaction's own in-range writes
  /// (own-write wins per key; own deletes suppress committed rows).
  static Status ScanRangeWithOverlay(
      Transaction& txn, VersionedStore& store, Timestamp read_ts,
      std::string_view lo, std::string_view hi,
      const std::function<bool(std::string_view, std::string_view)>&
          callback);
};

/// Instantiates a protocol bound to `context`.
std::unique_ptr<ConcurrencyProtocol> MakeProtocol(ProtocolType type,
                                                  StateContext* context);

}  // namespace streamsi

#endif  // STREAMSI_TXN_PROTOCOL_H_
