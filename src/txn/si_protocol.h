// SiProtocol: the paper's MVCC snapshot-isolation protocol (§4.2).
//
//  * Read: own write set first, then the newest version visible at the
//    transaction's pinned ReadCTS (first read pins the group's LastCTS,
//    later reads reuse it — every operation reads from the same snapshot).
//  * Write: append to the dirty array; writes never block.
//  * Commit: per key, claim commit ownership (the "additional write locks"
//    for multiple writers), check First-Committer-Wins (a newer committed
//    version than the transaction's BOT timestamp forces an abort), apply
//    in memory, persist through to the base table, and finally advance the
//    group's commit timestamp.
//  * Abort: drop the write set; committed data was never touched, so no
//    undo is needed.

#ifndef STREAMSI_TXN_SI_PROTOCOL_H_
#define STREAMSI_TXN_SI_PROTOCOL_H_

#include "txn/protocol.h"

namespace streamsi {

class SiProtocol final : public ConcurrencyProtocol {
 public:
  explicit SiProtocol(StateContext* context) : context_(context) {}

  ProtocolType type() const override { return ProtocolType::kMvcc; }

  Status Read(Transaction& txn, VersionedStore& store, std::string_view key,
              std::string* value) override;
  Status Write(Transaction& txn, VersionedStore& store, std::string_view key,
               std::string_view value) override;
  Status Delete(Transaction& txn, VersionedStore& store,
                std::string_view key) override;
  Status Scan(Transaction& txn, VersionedStore& store,
              const std::function<bool(std::string_view, std::string_view)>&
                  callback) override;
  Status ScanRange(Transaction& txn, VersionedStore& store,
                   std::string_view lo, std::string_view hi,
                   const std::function<bool(std::string_view,
                                            std::string_view)>&
                       callback) override;

  Status Validate(Transaction& txn, VersionedStore& store) override;
  void ReleaseState(Transaction& txn, VersionedStore& store,
                    bool committed) override;

  /// Batch-amortized validation (default on): Phase 1 validates and locks
  /// the whole write set in one LockForCommitBatch pass per store. The
  /// per-key path is kept verbatim behind this switch — the conflict-
  /// semantics differential test runs both against the same interleavings.
  void set_batched_validation(bool on) { batched_validation_ = on; }
  bool batched_validation() const { return batched_validation_; }

 private:
  /// The transaction's snapshot for this store (pin-on-first-read, §4.2).
  Timestamp SnapshotFor(Transaction& txn, VersionedStore& store);

  Status ValidateBatched(Transaction& txn, VersionedStore& store,
                         const WriteSet& ws);
  Status ValidatePerKey(Transaction& txn, VersionedStore& store,
                        const WriteSet& ws);

  StateContext* context_;
  bool batched_validation_ = true;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_SI_PROTOCOL_H_
