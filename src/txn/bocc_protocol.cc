#include "txn/bocc_protocol.h"

namespace streamsi {

Status BoccProtocol::Read(Transaction& txn, VersionedStore& store,
                          std::string_view key, std::string* value) {
  if (const WriteSet* ws = txn.FindWriteSet(store.id()); ws != nullptr) {
    if (const auto own = ws->Find(key); own.written) {
      if (own.is_delete) return Status::NotFound("deleted by self");
      value->assign(own.value.data(), own.value.size());
      return Status::OK();
    }
  }
  txn.RecordRead(store.id(), key);
  return store.ReadLatest(key, value);
}

Status BoccProtocol::Write(Transaction& txn, VersionedStore& store,
                           std::string_view key, std::string_view value) {
  txn.MutableWriteSet(store.id()).Put(key, value);
  return Status::OK();
}

Status BoccProtocol::Delete(Transaction& txn, VersionedStore& store,
                            std::string_view key) {
  txn.MutableWriteSet(store.id()).Delete(key);
  return Status::OK();
}

Status BoccProtocol::Scan(
    Transaction& txn, VersionedStore& store,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  return ScanWithOverlay(
      txn, store, kInfinityTs - 1,
      [&](std::string_view key, std::string_view value) {
        txn.RecordRead(store.id(), key);
        return callback(key, value);
      });
}

Status BoccProtocol::PreCommit(Transaction& txn) {
  (void)txn;
  commit_mutex_.lock();
  return Status::OK();
}

Status BoccProtocol::Validate(Transaction& txn, VersionedStore& store) {
  (void)store;  // validation is transaction-global; run it once
  if (validated_marker_ == txn.id()) return Status::OK();
  if (log_.HasConflict(txn.id(), txn.read_set())) {
    return Status::Aborted(
        "BOCC backward validation: read set overlaps a newer commit");
  }
  validated_marker_ = txn.id();
  return Status::OK();
}

void BoccProtocol::PostCommit(Transaction& txn, Timestamp commit_ts,
                              bool committed) {
  (void)commit_ts;
  if (committed) {
    std::unordered_set<std::string> write_keys;
    for (StateId state : txn.WrittenStates()) {
      const WriteSet* ws = txn.FindWriteSet(state);
      if (ws == nullptr) continue;
      for (const auto& entry : ws->entries()) {
        write_keys.insert(Transaction::NamespacedKey(state, entry.key));
      }
    }
    if (!write_keys.empty()) {
      // The log timestamp is drawn at the *end* of the write phase, not at
      // apply time: backward validation must flag every transaction whose
      // write phase overlapped a validating reader's read phase. A reader
      // that began while this apply was in flight has BOT < this timestamp
      // and is correctly aborted; stamping the (earlier) apply timestamp
      // would let its torn reads pass validation.
      log_.Append(context_->clock().Next(), std::move(write_keys));
    }
  }
  validated_marker_ = 0;
  commit_mutex_.unlock();

  if (commits_since_prune_.fetch_add(1, std::memory_order_relaxed) % 256 ==
      255) {
    log_.Prune(context_->OldestActiveBegin());
  }
}

}  // namespace streamsi
