#include "txn/si_protocol.h"

#include <string>
#include <utility>

#include "common/small_vec.h"

namespace streamsi {

Timestamp SiProtocol::SnapshotFor(Transaction& txn, VersionedStore& store) {
  // Pins are immutable once set; cache the derived per-state snapshot in
  // the transaction so the hot read path avoids the group registry.
  if (auto cached = txn.CachedSnapshot(store.id()); cached.has_value()) {
    return *cached;
  }
  const Timestamp snapshot =
      context_->PinReadCtsForState(txn.slot(), store.id());
  txn.CacheSnapshot(store.id(), snapshot);
  return snapshot;
}

Status SiProtocol::Read(Transaction& txn, VersionedStore& store,
                        std::string_view key, std::string* value) {
  // §4.2: "The read operation starts by checking whether the accessing
  // transaction has already written a new value (Uncommitted Write Set)."
  if (const WriteSet* ws = txn.FindWriteSet(store.id()); ws != nullptr) {
    if (const auto own = ws->Find(key); own.written) {
      if (own.is_delete) return Status::NotFound("deleted by self");
      value->assign(own.value.data(), own.value.size());
      return Status::OK();
    }
  }
  if (txn.isolation() == IsolationLevel::kReadCommitted) {
    // Weaker visibility on request (§3): newest committed version, no pin.
    return store.ReadLatest(key, value);
  }
  return store.ReadCommitted(SnapshotFor(txn, store), key, value);
}

Status SiProtocol::Write(Transaction& txn, VersionedStore& store,
                         std::string_view key, std::string_view value) {
  txn.MutableWriteSet(store.id()).Put(key, value);
  return Status::OK();
}

Status SiProtocol::Delete(Transaction& txn, VersionedStore& store,
                          std::string_view key) {
  txn.MutableWriteSet(store.id()).Delete(key);
  return Status::OK();
}

Status SiProtocol::Scan(
    Transaction& txn, VersionedStore& store,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  const Timestamp read_ts = txn.isolation() == IsolationLevel::kReadCommitted
                                ? kInfinityTs - 1
                                : SnapshotFor(txn, store);
  return ScanWithOverlay(txn, store, read_ts, callback);
}

Status SiProtocol::ScanRange(
    Transaction& txn, VersionedStore& store, std::string_view lo,
    std::string_view hi,
    const std::function<bool(std::string_view, std::string_view)>& callback) {
  // Snapshot isolation gets range reads phantom-free for free: every key in
  // [lo, hi) is judged against the same pinned ReadCTS, so an insert
  // committed after the pin is invisible no matter when it lands relative
  // to the traversal.
  const Timestamp read_ts = txn.isolation() == IsolationLevel::kReadCommitted
                                ? kInfinityTs - 1
                                : SnapshotFor(txn, store);
  return ScanRangeWithOverlay(txn, store, read_ts, lo, hi, callback);
}

Status SiProtocol::Validate(Transaction& txn, VersionedStore& store) {
  const WriteSet* ws = txn.FindWriteSet(store.id());
  if (ws == nullptr || ws->empty()) return Status::OK();
  return batched_validation_ ? ValidateBatched(txn, store, *ws)
                             : ValidatePerKey(txn, store, *ws);
}

Status SiProtocol::ValidatePerKey(Transaction& txn, VersionedStore& store,
                                  const WriteSet& ws) {
  for (const auto& entry : ws.entries()) {
    // Commit-time write lock ("In the case of multiple writers, additional
    // write locks are introduced"). The recorded key is a view into the
    // write set — stable until the scratch resets after release. The
    // resolved entry handle is stashed on the write-set entry and on the
    // lock record: the apply and release phases reuse it instead of
    // re-probing the bucket table per key.
    VersionedStore::EntryHandle handle = nullptr;
    STREAMSI_RETURN_NOT_OK(store.LockForCommit(entry.key, txn.id(), &handle));
    entry.commit_hint = handle;
    txn.RecordCommitLock(store.id(), entry.key, handle);
    // First-Committer-Wins: someone committed a modification (install or
    // delete) of this key after our BOT.
    if (store.LatestModification(handle) > txn.id()) {
      return Status::Conflict("first-committer-wins: key '" +
                              std::string(entry.key) +
                              "' has a newer committed modification");
    }
  }
  return Status::OK();
}

Status SiProtocol::ValidateBatched(Transaction& txn, VersionedStore& store,
                                   const WriteSet& ws) {
  // Batch-amortized Phase 1: validate-and-lock the whole write set in one
  // store pass (one epoch pin for every probe, one shard-latch acquisition
  // per distinct shard for creations, one scratch-lock acquisition for all
  // lock records) instead of a per-key round-trip. LockForCommitBatch
  // claims locks in write-set order, so abort/retry outcomes are identical
  // to ValidatePerKey — including the FCW-failed key holding (and later
  // releasing) its lock.
  const auto& entries = ws.entries();
  SmallVec<VersionedStore::CommitLockRequest, 16> requests;
  for (const auto& entry : entries) {
    requests.push_back(
        VersionedStore::CommitLockRequest{entry.key, entry.hash, nullptr});
  }
  std::size_t locked = 0;
  const Status status =
      store.LockForCommitBatch(requests.begin(), requests.size(), txn.id(),
                               &locked);
  // Stash the resolved handles for the apply phase and record every
  // claimed lock for release — both only over the locked prefix.
  for (std::size_t i = 0; i < locked; ++i) {
    entries[i].commit_hint = requests[i].handle;
  }
  txn.RecordCommitLocks(store.id(), locked, [&](std::size_t i) {
    return std::pair<std::string_view, void*>(entries[i].key,
                                              requests[i].handle);
  });
  return status;
}

void SiProtocol::ReleaseState(Transaction& txn, VersionedStore& store,
                              bool /*committed*/) {
  // Release this store's commit locks in place (no vector churn).
  txn.ReleaseCommitLocks(store.id(), [&](const CommitLockRef& lock) {
    if (lock.entry != nullptr) {
      store.UnlockCommit(lock.entry, txn.id());
    } else {
      store.UnlockCommit(lock.key, txn.id());
    }
  });
}

}  // namespace streamsi
