// S2plProtocol: strict two-phase locking baseline (§5, Eswaran et al. [6]).
//
// Readers take shared locks, writers exclusive locks, all held until the
// transaction finishes (strictness). Deadlocks are avoided by wait-die.
// Writes are still buffered in the write set and installed at commit — the
// exclusive lock guarantees nobody observes intermediate states, and reusing
// the shared commit pipeline keeps the multi-state consistency protocol
// identical across protocols, as in the paper's evaluation.

#ifndef STREAMSI_TXN_S2PL_PROTOCOL_H_
#define STREAMSI_TXN_S2PL_PROTOCOL_H_

#include "txn/lock_manager.h"
#include "txn/protocol.h"

namespace streamsi {

class S2plProtocol final : public ConcurrencyProtocol {
 public:
  explicit S2plProtocol(StateContext* context) : context_(context) {}

  ProtocolType type() const override { return ProtocolType::kS2pl; }

  Status Read(Transaction& txn, VersionedStore& store, std::string_view key,
              std::string* value) override;
  Status Write(Transaction& txn, VersionedStore& store, std::string_view key,
               std::string_view value) override;
  Status Delete(Transaction& txn, VersionedStore& store,
                std::string_view key) override;
  Status Scan(Transaction& txn, VersionedStore& store,
              const std::function<bool(std::string_view, std::string_view)>&
                  callback) override;

  Status Validate(Transaction& txn, VersionedStore& store) override {
    (void)txn;
    (void)store;
    return Status::OK();  // the locks already guarantee admissibility
  }

  void FinalizeTxn(Transaction& txn, bool committed) override;

  LockManager& lock_manager() { return locks_; }

 private:
  StateContext* context_;
  LockManager locks_;
};

}  // namespace streamsi

#endif  // STREAMSI_TXN_S2PL_PROTOCOL_H_
