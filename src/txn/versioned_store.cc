#include "txn/versioned_store.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <functional>
#include <new>

#include "common/logging.h"
#include "common/small_vec.h"

namespace streamsi {

// ---------------------------------------------------------- ordered index ---

VersionedStore::OrderedIndex::OrderedIndex() {
  head_ = NewNode(nullptr, kMaxHeight);
}

VersionedStore::OrderedIndex::~OrderedIndex() {
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->Next(0);
    node->~Node();
    std::free(node);
    node = next;
  }
}

VersionedStore::OrderedIndex::Node* VersionedStore::OrderedIndex::NewNode(
    Entry* entry, int height) {
  const std::size_t size =
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  void* mem = std::malloc(size);
  Node* node = new (mem) Node();
  node->entry.store(entry, std::memory_order_relaxed);
  node->height = height;
  for (int i = 0; i < height; ++i) node->SetNext(i, nullptr);
  return node;
}

int VersionedStore::OrderedIndex::RandomHeight() {
  std::lock_guard<SpinLock> guard(rng_lock_);
  int height = 1;
  while (height < kMaxHeight && (rng_.Next() & 3) == 0) ++height;
  return height;
}

VersionedStore::OrderedIndex::Node*
VersionedStore::OrderedIndex::FindGreaterOrEqual(std::string_view key,
                                                 Node** prev) const {
  Node* node = head_;
  int level = max_height_.load(std::memory_order_acquire) - 1;
  for (;;) {
    Node* next = node->Next(level);
    if (next != nullptr && next->key() < key) {
      node = next;
    } else {
      if (prev != nullptr) prev[level] = node;
      if (level == 0) return next;
      --level;
    }
  }
}

void VersionedStore::OrderedIndex::InsertOrRepoint(Entry* entry) {
  const std::string_view key = entry->key;
  for (;;) {
    // Pre-fill every level with head_: FindGreaterOrEqual only writes
    // prev[0..L) for the max_height_ it observed, and a concurrent insert
    // (from another shard's creator) may raise max_height_ between that
    // load and ours below — the upper-level linking loop re-walks forward
    // from prev[level], so head_ is a correct conservative start for any
    // level the search never touched.
    Node* prev[kMaxHeight];
    for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_;
    Node* found = FindGreaterOrEqual(key, prev);
    if (found != nullptr && found->key() == key) {
      // Warm-reload swap: the key keeps its node, the node gets the
      // replacement entry. Readers mid-probe on the old entry are safe —
      // superseded entries are immortal (the shard graveyard owns them).
      found->entry.store(entry, std::memory_order_release);
      return;
    }

    const int height = RandomHeight();
    int cur_max = max_height_.load(std::memory_order_relaxed);
    while (height > cur_max &&
           !max_height_.compare_exchange_weak(cur_max, height,
                                              std::memory_order_acq_rel)) {
    }

    Node* node = NewNode(entry, height);
    // Link bottom level first with CAS; a concurrent insert from another
    // shard's creator may have raced us into this spot — retry from scratch.
    node->SetNext(0, found);
    if (!prev[0]->CasNext(0, found, node)) {
      node->~Node();
      std::free(node);
      continue;
    }

    // Upper levels are best-effort: a failed CAS leaves the node reachable
    // via level 0, which preserves correctness.
    for (int level = 1; level < height; ++level) {
      for (;;) {
        Node* next = prev[level]->Next(level);
        if (next != nullptr && next->key() < key) {
          Node* p = prev[level];
          while (true) {
            Node* n = p->Next(level);
            if (n == nullptr || n->key() >= key) break;
            p = n;
          }
          prev[level] = p;
          continue;
        }
        node->SetNext(level, next);
        if (prev[level]->CasNext(level, next, node)) break;
      }
    }
    return;
  }
}

VersionedStore::VersionedStore(StateId id, std::string name,
                               std::unique_ptr<TableBackend> backend,
                               const StoreOptions& options)
    : id_(id),
      name_(std::move(name)),
      backend_(std::move(backend)),
      options_(options),
      shards_(kShards) {}

VersionedStore::~VersionedStore() {
  // Drop bucket tables / value buffers this store retired (entries and
  // current tables are freed by the shard destructors directly — no reader
  // may be active at this point). Freeing needs the epoch to advance twice
  // past the retire epoch, hence multiple passes; bounded, because other
  // stores' readers may legitimately pin the epoch.
  EpochManager& manager = EpochManager::Global();
  for (int i = 0; i < 3 && manager.GarbageCount() > 0; ++i) {
    manager.TryReclaim();
  }
}

// ------------------------------------------------------------ shard index ---

VersionedStore::Entry* VersionedStore::FindEntry(std::string_view key,
                                                 std::size_t hash) const {
  const Shard& shard = shards_[ShardIndex(hash)];
  const BucketTable* table = shard.table.load(std::memory_order_acquire);
  for (std::size_t i = hash & table->mask, probes = 0; probes <= table->mask;
       ++probes, i = (i + 1) & table->mask) {
    Entry* entry = table->buckets[i].load(std::memory_order_acquire);
    if (entry == nullptr) return nullptr;  // no deletions => probe ends here
    if (entry->hash == hash && entry->key == key) return entry;
  }
  return nullptr;
}

std::size_t VersionedStore::FindBucketOf(const BucketTable* table,
                                         const Entry* entry) {
  for (std::size_t i = entry->hash & table->mask, probes = 0;
       probes <= table->mask; ++probes, i = (i + 1) & table->mask) {
    if (table->buckets[i].load(std::memory_order_relaxed) == entry) return i;
  }
  return table->capacity;
}

void VersionedStore::InsertEntryLocked(Shard& shard,
                                       std::unique_ptr<Entry> entry) {
  BucketTable* table = shard.table.load(std::memory_order_relaxed);
  if ((shard.size + 1) * 4 > table->capacity * 3) {
    auto* grown = new BucketTable(table->capacity * 2);
    for (std::size_t i = 0; i < table->capacity; ++i) {
      Entry* existing = table->buckets[i].load(std::memory_order_relaxed);
      if (existing == nullptr) continue;
      std::size_t j = existing->hash & grown->mask;
      while (grown->buckets[j].load(std::memory_order_relaxed) != nullptr) {
        j = (j + 1) & grown->mask;
      }
      grown->buckets[j].store(existing, std::memory_order_relaxed);
    }
    // Publish the grown table, then retire the old one: readers that loaded
    // the old pointer keep probing a consistent (frozen) table until their
    // epoch guard closes.
    shard.table.store(grown, std::memory_order_release);
    EpochManager::Global().Retire(table);
    table = grown;
  }
  Entry* raw = entry.get();
  std::size_t i = raw->hash & table->mask;
  while (table->buckets[i].load(std::memory_order_relaxed) != nullptr) {
    i = (i + 1) & table->mask;
  }
  shard.entries.push_back(std::move(entry));
  ++shard.size;
  table->buckets[i].store(raw, std::memory_order_release);
  key_count_.fetch_add(1, std::memory_order_relaxed);
  // Ordered-index maintenance rides the entry-creation path (this shard's
  // latch is held; creators in other shards insert concurrently, which the
  // index's CAS insert tolerates). Point reads and the commit fast path for
  // existing keys never touch the index.
  ordered_index_.InsertOrRepoint(raw);
}

VersionedStore::Entry* VersionedStore::GetOrCreateEntry(std::string_view key) {
  const std::size_t hash = HashKey(key);
  {
    EpochGuard guard;
    if (Entry* entry = FindEntry(key, hash)) return entry;
  }
  Shard& shard = shards_[ShardIndex(hash)];
  ExclusiveGuard guard(shard.latch);
  // Re-probe under the latch: another writer may have inserted the key
  // between our optimistic miss and latch acquisition. No epoch guard is
  // needed — the latch excludes table replacement.
  if (Entry* entry = FindEntry(key, hash)) return entry;
  auto entry =
      std::make_unique<Entry>(std::string(key), hash, options_.mvcc_slots);
  Entry* raw = entry.get();
  InsertEntryLocked(shard, std::move(entry));
  return raw;
}

// -------------------------------------------------------------- read path ---

Status VersionedStore::ReadCommitted(Timestamp read_ts, std::string_view key,
                                     std::string* value) const {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  EpochGuard epoch_guard;
  const Entry* entry = FindEntry(key, HashKey(key));
  if (entry != nullptr &&
      ReadOptimistic(
          entry,
          [&] { return entry->object.TryGetVisible(read_ts, value); },
          [&] { return entry->object.GetVisible(read_ts, value); }) ==
          MvccObject::ReadResult::kHit) {
    return Status::OK();
  }
  stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
  return Status::NotFound();
}

Status VersionedStore::ReadLatest(std::string_view key,
                                  std::string* value) const {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  EpochGuard epoch_guard;
  const Entry* entry = FindEntry(key, HashKey(key));
  if (entry != nullptr &&
      ReadOptimistic(
          entry, [&] { return entry->object.TryGetLatestLive(value); },
          [&] { return entry->object.GetLatestLive(value); }) ==
          MvccObject::ReadResult::kHit) {
    return Status::OK();
  }
  stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
  return Status::NotFound();
}

Timestamp VersionedStore::LatestCts(std::string_view key) const {
  EpochGuard epoch_guard;
  const Entry* entry = FindEntry(key, HashKey(key));
  if (entry == nullptr) return kInitialTs;
  Timestamp cts = kInitialTs;
  ReadOptimistic(
      entry, [&] { return entry->object.TryLatestCts(&cts); },
      [&] {
        cts = entry->object.LatestCts();
        return true;
      });
  return cts;
}

Timestamp VersionedStore::LatestModification(std::string_view key) const {
  EpochGuard epoch_guard;
  const Entry* entry = FindEntry(key, HashKey(key));
  if (entry == nullptr) return kInitialTs;
  return entry->latest_modification.load(std::memory_order_acquire);
}

Status VersionedStore::ScanCommitted(
    Timestamp read_ts,
    const std::function<bool(std::string_view, std::string_view)>& callback)
    const {
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  std::string value;
  // Copy entry pointers out in fixed-size batches under the shared shard
  // latch (inserts are exclusive, and the entries vector is append-only, so
  // index-based resume is stable), then release it before probing versions
  // or invoking the callback. Entries are owned by the shard until the
  // store dies, so the raw pointers outlive the latch — and a callback that
  // writes back into this store (GetOrCreateEntry takes the same latch
  // exclusively) cannot self-deadlock. The stack batch keeps the scan
  // zero-allocation. The epoch is pinned only around each version probe —
  // never across the user callback, which could run long and stall
  // reclamation store-wide.
  constexpr std::size_t kBatch = 64;
  const Entry* batch[kBatch];
  for (const Shard& shard : shards_) {
    // Bound the scan by the shard's size at entry: keys the callback
    // appends to THIS shard are not visited (else a callback that derives a
    // new key from every visited one could extend the scan forever).
    std::size_t limit;
    {
      SharedGuard shard_guard(shard.latch);
      limit = shard.entries.size();
    }
    std::size_t next = 0;
    while (next < limit) {
      std::size_t filled = 0;
      {
        SharedGuard shard_guard(shard.latch);
        while (filled < kBatch && next < limit) {
          batch[filled++] = shard.entries[next++].get();
        }
      }
      for (std::size_t i = 0; i < filled; ++i) {
        const Entry* entry = batch[i];
        bool visible;
        {
          EpochGuard epoch_guard;
          visible = ReadOptimistic(
                        entry,
                        [&] { return entry->object.TryGetVisible(read_ts,
                                                                 &value); },
                        [&] { return entry->object.GetVisible(read_ts,
                                                              &value); }) ==
                    MvccObject::ReadResult::kHit;
        }
        if (visible && !callback(entry->key, value)) return Status::OK();
      }
    }
  }
  return Status::OK();
}

Status VersionedStore::ScanRangeCommitted(
    Timestamp read_ts, std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view, std::string_view)>& callback)
    const {
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  std::string value;
  // The traversal itself takes no latch and pins no epoch: index nodes are
  // never unlinked or freed before the store dies, and the Entry a node
  // points at (even a superseded one) is likewise immortal. Only the
  // version probe pins the epoch — MvccObject slot arrays are reclaimed
  // through it on growth — and the user callback runs with nothing held,
  // so it may write back into this store (even create keys) safely.
  const OrderedIndex::Node* node = ordered_index_.Seek(lo);
  while (node != nullptr) {
    const Entry* entry = node->entry.load(std::memory_order_acquire);
    const std::string_view key = entry->key;
    if (!hi.empty() && key >= hi) break;
    bool visible;
    {
      EpochGuard epoch_guard;
      visible =
          ReadOptimistic(
              entry,
              [&] { return entry->object.TryGetVisible(read_ts, &value); },
              [&] { return entry->object.GetVisible(read_ts, &value); }) ==
          MvccObject::ReadResult::kHit;
    }
    if (visible && !callback(key, value)) return Status::OK();
    node = node->Next(0);
  }
  return Status::OK();
}

// ------------------------------------------------------------ commit path ---

Status VersionedStore::LockForCommit(std::string_view key, TxnId txn,
                                     EntryHandle* handle) {
  Entry* entry = GetOrCreateEntry(key);
  if (handle != nullptr) *handle = entry;
  TxnId expected = 0;
  if (entry->commit_owner.compare_exchange_strong(
          expected, txn, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  if (expected == txn) return Status::OK();  // re-entrant
  return Status::Conflict("key is being committed by txn " +
                          std::to_string(expected));
}

Status VersionedStore::LockForCommitBatch(CommitLockRequest* requests,
                                          std::size_t count, TxnId txn,
                                          std::size_t* locked_count) {
  *locked_count = 0;
  if (count == 0) return Status::OK();
  stats_.batch_validates.fetch_add(1, std::memory_order_relaxed);

  // Phase A: resolve every existing entry under ONE epoch pin (the per-key
  // path pins once per key). Write sets cache HashKey(key) per entry, so
  // nothing is re-hashed here either.
  std::size_t misses = 0;
  {
    EpochGuard epoch_guard;
    for (std::size_t i = 0; i < count; ++i) {
      assert(requests[i].hash == HashKey(requests[i].key));
      requests[i].handle = FindEntry(requests[i].key, requests[i].hash);
      misses += requests[i].handle == nullptr ? 1 : 0;
    }
  }

  // Phase B: create the missing entries, sorted by shard so each shard's
  // exclusive latch is acquired once per batch instead of once per key.
  if (misses > 0) {
    SmallVec<std::uint32_t, 16> miss;
    for (std::size_t i = 0; i < count; ++i) {
      if (requests[i].handle == nullptr) {
        miss.push_back(static_cast<std::uint32_t>(i));
      }
    }
    std::sort(miss.begin(), miss.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return ShardIndex(requests[a].hash) <
                       ShardIndex(requests[b].hash);
              });
    std::size_t pos = 0;
    while (pos < miss.size()) {
      const std::size_t shard_idx = ShardIndex(requests[miss[pos]].hash);
      Shard& shard = shards_[shard_idx];
      ExclusiveGuard guard(shard.latch);
      for (; pos < miss.size() &&
             ShardIndex(requests[miss[pos]].hash) == shard_idx;
           ++pos) {
        CommitLockRequest& req = requests[miss[pos]];
        // Re-probe under the latch: another writer may have created the key
        // since the optimistic miss. No epoch guard is needed — the latch
        // excludes table replacement.
        Entry* entry = FindEntry(req.key, req.hash);
        if (entry == nullptr) {
          auto created = std::make_unique<Entry>(std::string(req.key),
                                                 req.hash,
                                                 options_.mvcc_slots);
          entry = created.get();
          InsertEntryLocked(shard, std::move(created));
        }
        req.handle = entry;
      }
    }
  }

  // Phase C: claim commit ownership and check First-Committer-Wins in
  // request (write-set) order — the observable lock/conflict sequence is
  // identical to the per-key path. Ownership is a try-lock CAS, so the
  // in-order claim cannot deadlock regardless of other batches' orders.
  for (std::size_t i = 0; i < count; ++i) {
    Entry* entry = static_cast<Entry*>(requests[i].handle);
    TxnId expected = 0;
    if (!entry->commit_owner.compare_exchange_strong(
            expected, txn, std::memory_order_acq_rel) &&
        expected != txn) {
      *locked_count = i;  // keys [0, i) hold locks; key i does not
      return Status::Conflict("key is being committed by txn " +
                              std::to_string(expected));
    }
    if (entry->latest_modification.load(std::memory_order_acquire) > txn) {
      // The FCW-failed key IS locked (and must be released), exactly like
      // the per-key path, which records the lock before the check.
      *locked_count = i + 1;
      return Status::Conflict("first-committer-wins: key '" +
                              std::string(requests[i].key) +
                              "' has a newer committed modification");
    }
  }
  *locked_count = count;
  return Status::OK();
}

void VersionedStore::UnlockCommit(std::string_view key, TxnId txn) {
  EpochGuard epoch_guard;
  Entry* entry = FindEntry(key, HashKey(key));
  if (entry == nullptr) return;
  UnlockCommit(static_cast<EntryHandle>(entry), txn);
}

void VersionedStore::UnlockCommit(EntryHandle handle, TxnId txn) {
  // No epoch pin: the handle is the entry, and entries outlive every
  // transaction (append-only shards, freed only with the store).
  Entry* entry = static_cast<Entry*>(handle);
  TxnId expected = txn;
  entry->commit_owner.compare_exchange_strong(expected, 0,
                                              std::memory_order_acq_rel);
}

Timestamp VersionedStore::LatestModification(EntryHandle handle) const {
  return static_cast<const Entry*>(handle)->latest_modification.load(
      std::memory_order_acquire);
}

Status VersionedStore::InstallWithBackpressure(Entry* entry,
                                               std::string_view value,
                                               Timestamp commit_ts,
                                               GcFloor& floor) {
  // Exponential backoff bounds: short first nap (the lagging reader often
  // just needs to be scheduled once on a loaded box), capped so an idle
  // system spends the budget in a handful of wake-ups. The budget itself is
  // WALL CLOCK, not summed nap requests: the wait hook wakes on any
  // transaction begin/end, so under heavy unrelated churn a nap can return
  // immediately — charging the request would burn the whole budget in
  // microseconds and fail a commit the lagging reader was milliseconds from
  // unblocking.
  constexpr std::uint64_t kFirstNapMicros = 100;
  constexpr std::uint64_t kMaxNapMicros = 10'000;
  // Set lazily on the first exhausted attempt: the steady-state install
  // (slot free or GC makes room) must not pay a clock read it discards.
  std::chrono::steady_clock::time_point deadline{};
  std::uint64_t nap = kFirstNapMicros;
  bool stalled = false;
  for (;;) {
    Status status;
    {
      ExclusiveGuard guard(entry->latch);
      const int versions_before = entry->object.VersionCount();
      const int capacity_before = entry->object.capacity();
      status = entry->object.Install(value, commit_ts, floor,
                                     options_.mvcc_slots_max);
      if (status.ok()) {
        stats_.installs.fetch_add(1, std::memory_order_relaxed);
        const int versions_after = entry->object.VersionCount();
        if (versions_after <= versions_before) {
          // Install succeeded without net growth => on-demand GC reclaimed.
          stats_.gc_reclaimed.fetch_add(
              static_cast<std::uint64_t>(versions_before - versions_after +
                                         1),
              std::memory_order_relaxed);
        }
        if (entry->object.capacity() > capacity_before) {
          stats_.slot_growths.fetch_add(1, std::memory_order_relaxed);
        }
        ++entry->blob_version;
      }
    }
    if (!status.IsResourceExhausted()) return status;
    // The array sits at mvcc_slots_max and every version is pinned. A
    // fixed floor can never rise — fail fast (tests/maintenance paths); a
    // refreshable floor rises as soon as the lagging reader's transaction
    // ends, so wait for that — bounded, with the entry latch released so
    // readers and their latched fallback stay live.
    if (!floor.refreshable()) return status;
    const auto now = std::chrono::steady_clock::now();
    if (!stalled) {
      stalled = true;
      stats_.version_wait_stalls.fetch_add(1, std::memory_order_relaxed);
      deadline = now + std::chrono::microseconds(options_.version_wait_micros);
    } else if (now >= deadline) {
      return status;
    }
    const std::uint64_t budget = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count());
    floor.Wait(std::min(nap, budget));
    nap = std::min(nap * 2, kMaxNapMicros);
    (void)floor.Refresh();
  }
}

Status VersionedStore::ApplyCommitted(std::string_view key,
                                      std::string_view value, bool is_delete,
                                      Timestamp commit_ts, GcFloor& floor,
                                      bool sync_hint) {
  return ApplyCommitted(static_cast<EntryHandle>(GetOrCreateEntry(key)),
                        value, is_delete, commit_ts, floor, sync_hint);
}

Status VersionedStore::ApplyCommitted(EntryHandle handle,
                                      std::string_view value, bool is_delete,
                                      Timestamp commit_ts, GcFloor& floor,
                                      bool sync_hint) {
  Entry* entry = static_cast<Entry*>(handle);
  if (is_delete) {
    ExclusiveGuard guard(entry->latch);
    const Status status = entry->object.MarkDeleted(commit_ts);
    // Deleting a key that never existed is a no-op, not an error: the
    // stream may carry deletes for already-expired window entries.
    if (!status.ok() && !status.IsNotFound()) return status;
    stats_.deletes.fetch_add(1, std::memory_order_relaxed);
    ++entry->blob_version;
  } else {
    STREAMSI_RETURN_NOT_OK(
        InstallWithBackpressure(entry, value, commit_ts, floor));
  }
  // FCW watermark: every committed modification counts, even a no-op
  // delete (two transactions writing the same key conflict regardless of
  // whether the key existed).
  Timestamp cur = entry->latest_modification.load(std::memory_order_relaxed);
  while (cur < commit_ts &&
         !entry->latest_modification.compare_exchange_weak(
             cur, commit_ts, std::memory_order_acq_rel)) {
  }
  if (options_.write_through) {
    return PersistEntry(entry->key, entry, sync_hint);
  }
  return Status::OK();
}

Status VersionedStore::PersistEntry(std::string_view key, Entry* entry,
                                    bool sync) {
  // Snapshot the blob under the shared latch, then write back outside it so
  // readers are never blocked behind an fsync. The persist_lock +
  // blob_version pair keeps backend writes per key in order even when
  // multiple transactions commit the same key back to back.
  std::string blob;
  std::uint64_t version;
  {
    SharedGuard guard(entry->latch);
    entry->object.EncodeTo(&blob);
    version = entry->blob_version;
  }
  std::lock_guard<SpinLock> persist_guard(entry->persist_lock);
  if (entry->persisted_version.load(std::memory_order_acquire) >= version) {
    return Status::OK();  // a newer snapshot was already persisted
  }
  STREAMSI_RETURN_NOT_OK(
      backend_->Put(key, blob, sync && options_.sync_on_commit));
  entry->persisted_version.store(version, std::memory_order_release);
  stats_.persisted.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ------------------------------------------------------------ maintenance ---

std::uint64_t VersionedStore::GarbageCollectAll(Timestamp oldest_active) {
  std::uint64_t reclaimed = 0;
  for (Shard& shard : shards_) {
    // Shared shard latch: blocks inserts (which are exclusive) so the
    // entries vector is stable; concurrent point reads stay latch-free.
    SharedGuard shard_guard(shard.latch);
    for (auto& entry : shard.entries) {
      ExclusiveGuard guard(entry->latch);
      reclaimed += static_cast<std::uint64_t>(
          entry->object.GarbageCollect(oldest_active));
    }
  }
  stats_.gc_reclaimed.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

Status VersionedStore::LoadFromBackend() {
  Status load_status = Status::OK();
  const Status scan_status =
      backend_->Scan([&](std::string_view key, std::string_view blob) {
        auto object = MvccObject::Decode(blob, options_.mvcc_slots);
        if (!object.ok()) {
          load_status = object.status();
          return false;
        }
        const std::size_t hash = HashKey(key);
        Shard& shard = shards_[ShardIndex(hash)];
        ExclusiveGuard guard(shard.latch);
        if (Entry* existing = FindEntry(key, hash)) {
          // Key already resident (reload onto a warm store): replace the
          // bucket's entry with the recovered one. The superseded entry
          // moves to the shard's graveyard — kept alive for stale Entry*
          // handles, but invisible to maintenance iteration (scan, GC,
          // MaxCommittedCts must only see reachable state).
          auto entry = std::make_unique<Entry>(std::string(key), hash,
                                               std::move(object).value());
          // Carry live commit ownership across the swap: a transaction that
          // holds the FCW commit lock on the superseded entry must still own
          // the key afterwards (its UnlockCommit will resolve to this
          // entry). The FCW watermark is intentionally NOT carried over —
          // reload semantics roll the key back to the persisted state.
          entry->commit_owner.store(
              existing->commit_owner.load(std::memory_order_acquire),
              std::memory_order_release);
          Entry* raw = entry.get();
          BucketTable* table = shard.table.load(std::memory_order_relaxed);
          const std::size_t bucket = FindBucketOf(table, existing);
          if (bucket < table->capacity) {
            table->buckets[bucket].store(raw, std::memory_order_release);
          }
          for (auto& owned : shard.entries) {
            if (owned.get() == existing) {
              shard.retired_entries.push_back(std::move(owned));
              owned = std::move(entry);
              break;
            }
          }
          // Repoint the key's ordered-index node at the replacement entry
          // so range scans cannot resurrect the superseded version array.
          ordered_index_.InsertOrRepoint(raw);
        } else {
          InsertEntryLocked(shard,
                            std::make_unique<Entry>(std::string(key), hash,
                                                    std::move(object).value()));
        }
        return true;
      });
  STREAMSI_RETURN_NOT_OK(scan_status);
  return load_status;
}

std::uint64_t VersionedStore::PurgeKeyVersionsAfter(std::string_view key,
                                                    Timestamp max_cts) {
  Entry* entry;
  {
    EpochGuard epoch_guard;
    entry = FindEntry(key, HashKey(key));
  }
  if (entry == nullptr) return 0;
  std::uint64_t purged = 0;
  bool changed = false;
  {
    ExclusiveGuard guard(entry->latch);
    // A rolled-back DELETE releases no slot (PurgeAfter just re-opens the
    // predecessor's dts), so detect any change via the modification
    // watermark, not the released-slot count alone.
    const Timestamp before = entry->object.LatestModification();
    purged = static_cast<std::uint64_t>(entry->object.PurgeAfter(max_cts));
    changed = purged > 0 || entry->object.LatestModification() != before;
    // Roll the FCW watermark back alongside the purged versions.
    if (entry->latest_modification.load(std::memory_order_relaxed) >
        max_cts) {
      entry->latest_modification.store(entry->object.LatestModification(),
                                       std::memory_order_release);
    }
    if (changed) ++entry->blob_version;
  }
  // Write the rollback through: ApplyCommitted already persisted the now-
  // purged install (or dts termination), and recovery keeps any durable
  // version/delete whose timestamp falls behind a later commit's recovered
  // LastCTS — without this re-persist the aborted write would resurrect
  // after a restart. (If we crash before the re-persist lands, recovery's
  // LastCTS purge rolls the key back instead, since the failed commit never
  // logged a group record.) Best effort: the commit is already failing, and
  // the crash case is covered by recovery either way.
  if (changed && options_.write_through) {
    (void)PersistEntry(key, entry, /*sync=*/true);
  }
  return purged;
}

std::uint64_t VersionedStore::PurgeVersionsAfter(Timestamp max_cts) {
  return PurgeUncommittedVersions(max_cts, [](Timestamp) { return false; });
}

std::uint64_t VersionedStore::PurgeUncommittedVersions(
    Timestamp covered_cts, const std::function<bool(Timestamp)>& is_committed) {
  std::uint64_t purged = 0;
  for (Shard& shard : shards_) {
    SharedGuard shard_guard(shard.latch);
    for (auto& entry : shard.entries) {
      bool changed = false;
      {
        ExclusiveGuard guard(entry->latch);
        // Like PurgeKeyVersionsAfter: a rolled-back DELETE releases no
        // slot, so detect any change via the modification watermark too.
        const Timestamp before = entry->object.LatestModification();
        const std::uint64_t entry_purged = static_cast<std::uint64_t>(
            entry->object.PurgeUncommitted(covered_cts, is_committed));
        purged += entry_purged;
        changed = entry_purged > 0 ||
                  entry->object.LatestModification() != before;
        // Roll the FCW watermark back alongside the purged versions.
        const Timestamp latest = entry->object.LatestModification();
        if (entry->latest_modification.load(std::memory_order_relaxed) !=
            latest) {
          entry->latest_modification.store(latest,
                                           std::memory_order_release);
        }
        if (changed) ++entry->blob_version;
      }
      // Write the rollback through (same reasoning as the abort path in
      // PurgeKeyVersionsAfter): the torn version is still in the backend
      // blob, and once later commits push the recovered LastCTS past its
      // timestamp, the NEXT recovery would keep it — a never-committed
      // write resurrecting as committed data. Until the re-persist lands,
      // every recovery at this watermark re-purges it, so best effort is
      // sound here too.
      if (changed && options_.write_through) {
        (void)PersistEntry(entry->key, entry.get(), /*sync=*/true);
      }
    }
  }
  return purged;
}

Status VersionedStore::BulkLoad(std::string_view key, std::string_view value) {
  Entry* entry = GetOrCreateEntry(key);
  {
    ExclusiveGuard guard(entry->latch);
    STREAMSI_RETURN_NOT_OK(
        entry->object.Install(value, kInitialTs, kInitialTs));
    ++entry->blob_version;
  }
  if (options_.write_through) {
    return PersistEntry(key, entry, /*sync=*/false);
  }
  return Status::OK();
}

#ifdef STREAMSI_READ_DEBUG
std::string VersionedStore::DebugDump(std::string_view key) const {
  EpochGuard epoch_guard;
  const Entry* entry = FindEntry(key, HashKey(key));
  if (entry == nullptr) return "<no entry>";
  SharedGuard guard(entry->latch);
  return DebugDumpObject(entry->object);
}
#endif

std::uint64_t VersionedStore::KeyCount() const {
  return key_count_.load(std::memory_order_relaxed);
}

Timestamp VersionedStore::MaxCommittedCts() const {
  Timestamp max_cts = kInitialTs;
  for (const Shard& shard : shards_) {
    SharedGuard shard_guard(shard.latch);
    for (const auto& entry : shard.entries) {
      SharedGuard guard(entry->latch);
      max_cts = std::max(max_cts, entry->object.LatestCts());
    }
  }
  return max_cts;
}

}  // namespace streamsi
