#include "txn/versioned_store.h"

#include <functional>

#include "common/logging.h"

namespace streamsi {

VersionedStore::VersionedStore(StateId id, std::string name,
                               std::unique_ptr<TableBackend> backend,
                               const StoreOptions& options)
    : id_(id),
      name_(std::move(name)),
      backend_(std::move(backend)),
      options_(options),
      shards_(kShards) {}

VersionedStore::~VersionedStore() = default;

std::size_t VersionedStore::ShardFor(std::string_view key) const {
  return std::hash<std::string_view>{}(key) % kShards;
}

VersionedStore::Entry* VersionedStore::FindEntry(std::string_view key) const {
  const Shard& shard = shards_[ShardFor(key)];
  SharedGuard guard(shard.latch);
  auto it = shard.map.find(std::string(key));
  return it == shard.map.end() ? nullptr : it->second.get();
}

VersionedStore::Entry* VersionedStore::GetOrCreateEntry(std::string_view key) {
  Shard& shard = shards_[ShardFor(key)];
  {
    SharedGuard guard(shard.latch);
    auto it = shard.map.find(std::string(key));
    if (it != shard.map.end()) return it->second.get();
  }
  ExclusiveGuard guard(shard.latch);
  auto [it, inserted] = shard.map.try_emplace(
      std::string(key), std::make_unique<Entry>(options_.mvcc_slots));
  if (inserted) key_count_.fetch_add(1, std::memory_order_relaxed);
  return it->second.get();
}

Status VersionedStore::ReadCommitted(Timestamp read_ts, std::string_view key,
                                     std::string* value) const {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  const Entry* entry = FindEntry(key);
  if (entry == nullptr) {
    stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound();
  }
  SharedGuard guard(entry->latch);
  if (!entry->object.GetVisible(read_ts, value)) {
    stats_.read_misses.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound();
  }
  return Status::OK();
}

Status VersionedStore::ReadLatest(std::string_view key,
                                  std::string* value) const {
  // A snapshot "just before infinity" sees exactly the live version.
  return ReadCommitted(kInfinityTs - 1, key, value);
}

Timestamp VersionedStore::LatestCts(std::string_view key) const {
  const Entry* entry = FindEntry(key);
  if (entry == nullptr) return kInitialTs;
  SharedGuard guard(entry->latch);
  return entry->object.LatestCts();
}

Timestamp VersionedStore::LatestModification(std::string_view key) const {
  const Entry* entry = FindEntry(key);
  if (entry == nullptr) return kInitialTs;
  return entry->latest_modification.load(std::memory_order_acquire);
}

Status VersionedStore::ScanCommitted(
    Timestamp read_ts,
    const std::function<bool(std::string_view, std::string_view)>& callback)
    const {
  stats_.scans.fetch_add(1, std::memory_order_relaxed);
  std::string value;
  for (const Shard& shard : shards_) {
    SharedGuard shard_guard(shard.latch);
    for (const auto& [key, entry] : shard.map) {
      bool visible;
      {
        SharedGuard guard(entry->latch);
        visible = entry->object.GetVisible(read_ts, &value);
      }
      if (visible && !callback(key, value)) return Status::OK();
    }
  }
  return Status::OK();
}

Status VersionedStore::LockForCommit(std::string_view key, TxnId txn) {
  Entry* entry = GetOrCreateEntry(key);
  TxnId expected = 0;
  if (entry->commit_owner.compare_exchange_strong(
          expected, txn, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  if (expected == txn) return Status::OK();  // re-entrant
  return Status::Conflict("key is being committed by txn " +
                          std::to_string(expected));
}

void VersionedStore::UnlockCommit(std::string_view key, TxnId txn) {
  Entry* entry = FindEntry(key);
  if (entry == nullptr) return;
  TxnId expected = txn;
  entry->commit_owner.compare_exchange_strong(expected, 0,
                                              std::memory_order_acq_rel);
}

Status VersionedStore::ApplyCommitted(std::string_view key,
                                      std::string_view value, bool is_delete,
                                      Timestamp commit_ts,
                                      Timestamp oldest_active,
                                      bool sync_hint) {
  Entry* entry = GetOrCreateEntry(key);
  {
    ExclusiveGuard guard(entry->latch);
    const int before = entry->object.VersionCount();
    if (is_delete) {
      const Status status = entry->object.MarkDeleted(commit_ts);
      // Deleting a key that never existed is a no-op, not an error: the
      // stream may carry deletes for already-expired window entries.
      if (!status.ok() && !status.IsNotFound()) return status;
      stats_.deletes.fetch_add(1, std::memory_order_relaxed);
    } else {
      STREAMSI_RETURN_NOT_OK(
          entry->object.Install(value, commit_ts, oldest_active));
      stats_.installs.fetch_add(1, std::memory_order_relaxed);
      const int after = entry->object.VersionCount();
      if (after <= before) {
        // Install succeeded without net growth => on-demand GC reclaimed.
        stats_.gc_reclaimed.fetch_add(
            static_cast<std::uint64_t>(before - after + 1),
            std::memory_order_relaxed);
      }
    }
    ++entry->blob_version;
  }
  // FCW watermark: every committed modification counts, even a no-op
  // delete (two transactions writing the same key conflict regardless of
  // whether the key existed).
  Timestamp cur = entry->latest_modification.load(std::memory_order_relaxed);
  while (cur < commit_ts &&
         !entry->latest_modification.compare_exchange_weak(
             cur, commit_ts, std::memory_order_acq_rel)) {
  }
  if (options_.write_through) {
    return PersistEntry(std::string(key), entry, sync_hint);
  }
  return Status::OK();
}

Status VersionedStore::PersistEntry(const std::string& key, Entry* entry,
                                    bool sync) {
  // Snapshot the blob under the shared latch, then write back outside it so
  // readers are never blocked behind an fsync. The persist_lock +
  // blob_version pair keeps backend writes per key in order even when
  // multiple transactions commit the same key back to back.
  std::string blob;
  std::uint64_t version;
  {
    SharedGuard guard(entry->latch);
    entry->object.EncodeTo(&blob);
    version = entry->blob_version;
  }
  std::lock_guard<SpinLock> persist_guard(entry->persist_lock);
  if (entry->persisted_version.load(std::memory_order_acquire) >= version) {
    return Status::OK();  // a newer snapshot was already persisted
  }
  STREAMSI_RETURN_NOT_OK(
      backend_->Put(key, blob, sync && options_.sync_on_commit));
  entry->persisted_version.store(version, std::memory_order_release);
  stats_.persisted.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::uint64_t VersionedStore::GarbageCollectAll(Timestamp oldest_active) {
  std::uint64_t reclaimed = 0;
  for (Shard& shard : shards_) {
    SharedGuard shard_guard(shard.latch);
    for (auto& [key, entry] : shard.map) {
      ExclusiveGuard guard(entry->latch);
      reclaimed +=
          static_cast<std::uint64_t>(entry->object.GarbageCollect(oldest_active));
    }
  }
  return reclaimed;
}

Status VersionedStore::LoadFromBackend() {
  Status load_status = Status::OK();
  const Status scan_status =
      backend_->Scan([&](std::string_view key, std::string_view blob) {
        auto object = MvccObject::Decode(blob, options_.mvcc_slots);
        if (!object.ok()) {
          load_status = object.status();
          return false;
        }
        Shard& shard = shards_[ShardFor(key)];
        ExclusiveGuard guard(shard.latch);
        auto entry = std::make_unique<Entry>(std::move(object).value());
        auto [it, inserted] =
            shard.map.insert_or_assign(std::string(key), std::move(entry));
        (void)it;
        if (inserted) key_count_.fetch_add(1, std::memory_order_relaxed);
        return true;
      });
  STREAMSI_RETURN_NOT_OK(scan_status);
  return load_status;
}

std::uint64_t VersionedStore::PurgeVersionsAfter(Timestamp max_cts) {
  std::uint64_t purged = 0;
  for (Shard& shard : shards_) {
    SharedGuard shard_guard(shard.latch);
    for (auto& [key, entry] : shard.map) {
      ExclusiveGuard guard(entry->latch);
      purged += static_cast<std::uint64_t>(entry->object.PurgeAfter(max_cts));
      // Roll the FCW watermark back alongside the purged versions.
      Timestamp cur =
          entry->latest_modification.load(std::memory_order_relaxed);
      if (cur > max_cts) {
        entry->latest_modification.store(entry->object.LatestModification(),
                                         std::memory_order_release);
      }
    }
  }
  return purged;
}

Status VersionedStore::BulkLoad(std::string_view key, std::string_view value) {
  Entry* entry = GetOrCreateEntry(key);
  {
    ExclusiveGuard guard(entry->latch);
    STREAMSI_RETURN_NOT_OK(
        entry->object.Install(value, kInitialTs, kInitialTs));
    ++entry->blob_version;
  }
  if (options_.write_through) {
    return PersistEntry(std::string(key), entry, /*sync=*/false);
  }
  return Status::OK();
}

std::uint64_t VersionedStore::KeyCount() const {
  return key_count_.load(std::memory_order_relaxed);
}

Timestamp VersionedStore::MaxCommittedCts() const {
  Timestamp max_cts = kInitialTs;
  for (const Shard& shard : shards_) {
    SharedGuard shard_guard(shard.latch);
    for (const auto& [key, entry] : shard.map) {
      SharedGuard guard(entry->latch);
      max_cts = std::max(max_cts, entry->object.LatestCts());
    }
  }
  return max_cts;
}

}  // namespace streamsi
