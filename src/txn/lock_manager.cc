#include "txn/lock_manager.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace streamsi {

LockManager::Shard& LockManager::ShardFor(std::string_view key) {
  return shards_[std::hash<std::string_view>{}(key) % kShards];
}

const LockManager::Shard& LockManager::ShardFor(std::string_view key) const {
  return shards_[std::hash<std::string_view>{}(key) % kShards];
}

Status LockManager::LockShared(std::string_view key, TxnId txn) {
  Shard& shard = ShardFor(key);
  for (;;) {
    {
      std::lock_guard<SpinLock> guard(shard.lock);
      LockEntry& entry = shard.map[std::string(key)];
      if (entry.exclusive_holder == 0 || entry.exclusive_holder == txn) {
        if (entry.exclusive_holder == txn) return Status::OK();  // covered
        if (std::find(entry.shared_holders.begin(),
                      entry.shared_holders.end(),
                      txn) == entry.shared_holders.end()) {
          entry.shared_holders.push_back(txn);
        }
        return Status::OK();
      }
      if (MustDie(txn, entry.exclusive_holder)) {
        return Status::Busy("wait-die: younger reader dies");
      }
    }
    // Older transaction waits for the younger writer. Yield: the holder
    // needs CPU time to finish (threads may outnumber cores).
    std::this_thread::yield();
  }
}

Status LockManager::LockExclusive(std::string_view key, TxnId txn) {
  Shard& shard = ShardFor(key);
  for (;;) {
    {
      std::lock_guard<SpinLock> guard(shard.lock);
      LockEntry& entry = shard.map[std::string(key)];
      if (entry.exclusive_holder == txn) return Status::OK();
      const bool sole_shared_holder =
          entry.shared_holders.size() == 1 && entry.shared_holders[0] == txn;
      if (entry.exclusive_holder == 0 &&
          (entry.shared_holders.empty() || sole_shared_holder)) {
        entry.shared_holders.clear();  // upgrade consumes the shared lock
        entry.exclusive_holder = txn;
        return Status::OK();
      }
      // Blocked: by the exclusive holder or by shared holders.
      if (entry.exclusive_holder != 0) {
        if (MustDie(txn, entry.exclusive_holder)) {
          return Status::Busy("wait-die: younger writer dies");
        }
      } else {
        for (TxnId holder : entry.shared_holders) {
          if (holder != txn && MustDie(txn, holder)) {
            return Status::Busy("wait-die: younger writer dies vs readers");
          }
        }
      }
    }
    std::this_thread::yield();
  }
}

void LockManager::Unlock(std::string_view key, TxnId txn) {
  Shard& shard = ShardFor(key);
  std::lock_guard<SpinLock> guard(shard.lock);
  auto it = shard.map.find(std::string(key));
  if (it == shard.map.end()) return;
  LockEntry& entry = it->second;
  if (entry.exclusive_holder == txn) entry.exclusive_holder = 0;
  entry.shared_holders.erase(
      std::remove(entry.shared_holders.begin(), entry.shared_holders.end(),
                  txn),
      entry.shared_holders.end());
  if (entry.exclusive_holder == 0 && entry.shared_holders.empty()) {
    shard.map.erase(it);
  }
}

std::size_t LockManager::LockedKeyCount() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<SpinLock> guard(shard.lock);
    count += shard.map.size();
  }
  return count;
}

}  // namespace streamsi
