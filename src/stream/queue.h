// BlockingQueue + queue-based stream handoff for crossing thread
// boundaries inside a topology (e.g. consuming ToStream change events,
// which are published from committing threads, on a dedicated thread).

#ifndef STREAMSI_STREAM_QUEUE_H_
#define STREAMSI_STREAM_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "stream/operator.h"

namespace streamsi {

template <typename T>
class BlockingQueue {
 public:
  void Push(T value) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until an element is available or the queue is closed.
  /// Returns nullopt when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

/// Decouples a producer chain from a consumer chain: enqueues upstream
/// elements and re-publishes them on a dedicated thread.
template <typename T>
class QueueHandoff : public OperatorBase, public Publisher<T> {
 public:
  explicit QueueHandoff(Publisher<T>* input) {
    input->Subscribe(
        [this](const StreamElement<T>& e) { queue_.Push(e); });
  }

  ~QueueHandoff() override {
    Stop();
    Join();
  }

  void Start() override {
    thread_ = std::thread([this] {
      while (auto element = queue_.Pop()) {
        this->Publish(*element);
        if (element->is_punctuation() &&
            element->punctuation() == Punctuation::kEndOfStream) {
          break;
        }
      }
    });
  }

  void Stop() override { queue_.Close(); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "QueueHandoff"; }

 private:
  BlockingQueue<StreamElement<T>> queue_;
  std::thread thread_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_QUEUE_H_
