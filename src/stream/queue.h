// BoundedQueue + queue-based stream handoff for crossing thread
// boundaries inside a topology (e.g. consuming ToStream change events,
// which are published from committing threads, on a dedicated thread, or
// feeding the per-lane worker threads of PartitionBy).
//
// The queue is multi-producer (any upstream thread may push), single- or
// multi-consumer, and *bounded*: when full, the configured backpressure
// policy either blocks the producer until the consumer drains (kBlock) or
// rejects the incoming element (kDropNewest). Close() is a drain barrier:
// elements enqueued before the close are still delivered, but Push after
// Close deterministically returns kClosed without enqueueing — a producer
// racing a shutdown can never smuggle elements into a queue whose consumer
// already observed drain-and-exit.
//
// Storage: bounded queues (capacity <= kRingMaxCapacity) run on a ring
// buffer allocated once at construction — the steady state allocates
// nothing per push. Unbounded queues keep the deque.
//
// Chunked lanes: LaneItem<T> is the queue element of a chunked lane — one
// slot carries EITHER a whole pooled chunk (a pointer handoff, the morsel
// fast path) OR a single StreamElement (punctuations, and per-tuple mode).
// With chunking enabled a bounded capacity therefore counts *items*
// (chunks/punctuations), not tuples.

#ifndef STREAMSI_STREAM_QUEUE_H_
#define STREAMSI_STREAM_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <new>
#include <optional>
#include <thread>

#include "stream/operator.h"

namespace streamsi {

/// What a producer does when the queue is full.
enum class BackpressurePolicy : unsigned char {
  kBlock = 0,       ///< wait until the consumer made room (lossless)
  kDropNewest = 1,  ///< reject the incoming element (lossy, non-blocking)
};

/// Outcome of BoundedQueue::Push.
enum class PushResult : unsigned char {
  kOk = 0,       ///< enqueued
  kDropped = 1,  ///< rejected: queue full under kDropNewest
  kClosed = 2,   ///< rejected: queue already closed
};

template <typename T>
class BoundedQueue {
 public:
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();
  /// Largest capacity backed by the preallocated ring (beyond it the
  /// upfront allocation would dwarf the deque's lazy growth).
  static constexpr std::size_t kRingMaxCapacity = std::size_t{1} << 16;

  struct Stats {
    std::uint64_t pushed = 0;   ///< elements accepted
    std::uint64_t dropped = 0;  ///< elements rejected (full or closed)
    std::uint64_t stalls = 0;   ///< producer waits due to a full queue
    std::size_t high_water = 0; ///< maximum observed depth
  };

  /// capacity == 0 (or kUnbounded) means unbounded.
  explicit BoundedQueue(std::size_t capacity = kUnbounded,
                        BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity == 0 ? kUnbounded : capacity), policy_(policy) {
    if (capacity_ != kUnbounded && capacity_ <= kRingMaxCapacity) {
      ring_ = static_cast<T*>(::operator new(
          sizeof(T) * capacity_, std::align_val_t(alignof(T))));
    }
  }

  ~BoundedQueue() {
    if (ring_ != nullptr) {
      for (std::size_t i = 0; i < count_; ++i) {
        ring_[(head_ + i) % capacity_].~T();
      }
      ::operator delete(ring_, std::align_val_t(alignof(T)));
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  PushResult Push(T value) {
    return PushImpl(std::move(value),
                    /*lossless=*/policy_ == BackpressurePolicy::kBlock);
  }

  /// Lossless push: waits for room even under kDropNewest. For elements
  /// that must never be dropped while the queue is open — punctuations
  /// carry transaction boundaries and EOS, and losing one desyncs merge
  /// alignment or hangs the consumer's natural-completion join.
  PushResult PushWait(T value) {
    return PushImpl(std::move(value), /*lossless=*/true);
  }

  /// Blocks until an element is available or the queue is closed.
  /// Returns nullopt when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return Size() > 0 || closed_; });
    if (Size() == 0) return std::nullopt;
    std::optional<T> value;
    if (ring_ != nullptr) {
      T& slot = ring_[head_];
      value.emplace(std::move(slot));
      slot.~T();
      head_ = (head_ + 1) % capacity_;
      --count_;
    } else {
      value.emplace(std::move(deque_.front()));
      deque_.pop_front();
    }
    lock.unlock();
    // Producers only ever wait on a finite capacity; unbounded queues skip
    // the per-element signal.
    if (capacity_ != kUnbounded) not_full_.notify_one();
    return value;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();  // wake producers blocked on a full queue
  }

  bool closed() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return Size();
  }

  std::size_t capacity() const { return capacity_; }

  Stats stats() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
  }

 private:
  std::size_t Size() const {
    return ring_ != nullptr ? count_ : deque_.size();
  }

  PushResult PushImpl(T value, bool lossless) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
      ++stats_.dropped;
      return PushResult::kClosed;
    }
    if (Size() >= capacity_) {
      if (!lossless) {
        ++stats_.dropped;
        return PushResult::kDropped;
      }
      ++stats_.stalls;
      not_full_.wait(lock, [this] { return Size() < capacity_ || closed_; });
      if (closed_) {
        ++stats_.dropped;
        return PushResult::kClosed;
      }
    }
    if (ring_ != nullptr) {
      new (&ring_[(head_ + count_) % capacity_]) T(std::move(value));
      ++count_;
    } else {
      deque_.push_back(std::move(value));
    }
    ++stats_.pushed;
    if (Size() > stats_.high_water) stats_.high_water = Size();
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> deque_;    ///< unbounded / oversized capacities
  T* ring_ = nullptr;      ///< bounded: preallocated ring storage
  std::size_t head_ = 0;   ///< ring: index of the front element
  std::size_t count_ = 0;  ///< ring: live element count
  Stats stats_;
  bool closed_ = false;
};

/// Unbounded blocking queue — the historical name, now with close-safe push
/// semantics (push after Close is rejected instead of silently enqueued).
template <typename T>
using BlockingQueue = BoundedQueue<T>;

/// One slot of a chunked lane queue: a whole pooled chunk OR a single
/// element (punctuations always travel as elements — §3 boundaries are
/// never buried inside a chunk).
template <typename T>
struct LaneItem {
  LaneItem() = default;
  explicit LaneItem(ChunkRef<T> chunk_arg) : chunk(std::move(chunk_arg)) {}
  explicit LaneItem(StreamElement<T> element_arg)
      : element(std::move(element_arg)) {}

  bool is_chunk() const { return static_cast<bool>(chunk); }

  ChunkRef<T> chunk;
  std::optional<StreamElement<T>> element;
};

/// Shared consumer protocol for queue-fed operator chains (QueueHandoff,
/// PartitionBy lanes): re-publishes queued elements on the calling thread
/// until EOS or close, then upholds the close barrier — the queue is
/// closed so a producer racing the exit gets kClosed instead of feeding a
/// consumerless queue (or blocking forever in PushWait on a full one) —
/// and synthesizes the EOS a close rejected, because the downstream chain
/// (merge alignment, WaitForEos, ToTable's EOS flush) keys its own
/// shutdown off it.
template <typename T>
void DrainQueueInto(BoundedQueue<StreamElement<T>>& queue, Publisher<T>& out,
                    std::atomic<std::uint64_t>& data_count) {
  bool saw_eos = false;
  while (auto element = queue.Pop()) {
    if (element->is_data()) {
      data_count.fetch_add(1, std::memory_order_relaxed);
    }
    out.Publish(*element);
    if (element->is_punctuation() &&
        element->punctuation() == Punctuation::kEndOfStream) {
      saw_eos = true;
      break;
    }
  }
  queue.Close();
  if (!saw_eos) {
    out.Publish(StreamElement<T>(Punctuation::kEndOfStream));
  }
}

/// Chunk-aware drain: same close-barrier/EOS protocol over a LaneItem
/// queue. A chunk slot is re-published as ONE PublishChunk call (the
/// pooled chunk returns to its pool when the item dies); element slots
/// follow the per-tuple path.
template <typename T>
void DrainLaneQueueInto(BoundedQueue<LaneItem<T>>& queue, Publisher<T>& out,
                        std::atomic<std::uint64_t>& data_count) {
  bool saw_eos = false;
  while (auto item = queue.Pop()) {
    if (item->is_chunk()) {
      data_count.fetch_add(item->chunk->size(), std::memory_order_relaxed);
      out.PublishChunk(item->chunk->view());
      continue;
    }
    const StreamElement<T>& element = *item->element;
    if (element.is_data()) {
      data_count.fetch_add(1, std::memory_order_relaxed);
    }
    out.Publish(element);
    if (element.is_punctuation() &&
        element.punctuation() == Punctuation::kEndOfStream) {
      saw_eos = true;
      break;
    }
  }
  queue.Close();
  if (!saw_eos) {
    out.Publish(StreamElement<T>(Punctuation::kEndOfStream));
  }
}

/// Decouples a producer chain from a consumer chain: enqueues upstream
/// elements and re-publishes them on a dedicated thread. Chunked upstreams
/// stay chunked across the handoff: an incoming ChunkView is copied into a
/// pooled chunk (the view dies with the upstream call) and crosses the
/// queue as one item. Under kDropNewest the drop granularity is the queue
/// item — a full queue sheds a whole chunk.
template <typename T>
class QueueHandoff : public OperatorBase, public Publisher<T> {
 public:
  struct Options {
    std::size_t queue_capacity = BoundedQueue<LaneItem<T>>::kUnbounded;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
  };

  explicit QueueHandoff(Publisher<T>* input, Options options = {})
      : queue_(options.queue_capacity, options.policy),
        pool_(ChunkPool<T>::Create()) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          // Punctuations are never load-sheddable: dropping an EOS would
          // hang the natural-completion join, dropping a boundary tears
          // batches.
          if (e.is_punctuation()) {
            (void)queue_.PushWait(LaneItem<T>(e));
          } else {
            (void)queue_.Push(LaneItem<T>(e));
          }
        },
        [this](const ChunkView<T>& view) {
          if (view.empty()) return;
          ChunkRef<T> chunk = pool_->Acquire(view.size());
          chunk->AppendView(view);
          chunks_in_.fetch_add(1, std::memory_order_relaxed);
          chunk_tuples_in_.fetch_add(view.size(), std::memory_order_relaxed);
          (void)queue_.Push(LaneItem<T>(std::move(chunk)));
        });
  }

  ~QueueHandoff() override {
    Stop();
    Join();
  }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ =
        std::thread([this] { DrainLaneQueueInto(queue_, *this, elements_); });
  }

  void Stop() override { queue_.Close(); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "QueueHandoff"; }

  OperatorStats stats() const override {
    const auto q = queue_.stats();
    OperatorStats s;
    s.elements = elements_.load(std::memory_order_relaxed);
    s.queue_depth = queue_.size();
    s.stalls = q.stalls;
    s.dropped = q.dropped;
    s.chunks = chunks_in_.load(std::memory_order_relaxed);
    s.chunk_tuples = chunk_tuples_in_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  BoundedQueue<LaneItem<T>> queue_;
  std::shared_ptr<ChunkPool<T>> pool_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<std::uint64_t> elements_{0};
  std::atomic<std::uint64_t> chunks_in_{0};
  std::atomic<std::uint64_t> chunk_tuples_in_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_QUEUE_H_
