// BoundedQueue + queue-based stream handoff for crossing thread
// boundaries inside a topology (e.g. consuming ToStream change events,
// which are published from committing threads, on a dedicated thread, or
// feeding the per-lane worker threads of PartitionBy).
//
// The queue is multi-producer (any upstream thread may push), single- or
// multi-consumer, and *bounded*: when full, the configured backpressure
// policy either blocks the producer until the consumer drains (kBlock) or
// rejects the incoming element (kDropNewest). Close() is a drain barrier:
// elements enqueued before the close are still delivered, but Push after
// Close deterministically returns kClosed without enqueueing — a producer
// racing a shutdown can never smuggle elements into a queue whose consumer
// already observed drain-and-exit.

#ifndef STREAMSI_STREAM_QUEUE_H_
#define STREAMSI_STREAM_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>

#include "stream/operator.h"

namespace streamsi {

/// What a producer does when the queue is full.
enum class BackpressurePolicy : unsigned char {
  kBlock = 0,       ///< wait until the consumer made room (lossless)
  kDropNewest = 1,  ///< reject the incoming element (lossy, non-blocking)
};

/// Outcome of BoundedQueue::Push.
enum class PushResult : unsigned char {
  kOk = 0,       ///< enqueued
  kDropped = 1,  ///< rejected: queue full under kDropNewest
  kClosed = 2,   ///< rejected: queue already closed
};

template <typename T>
class BoundedQueue {
 public:
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  struct Stats {
    std::uint64_t pushed = 0;   ///< elements accepted
    std::uint64_t dropped = 0;  ///< elements rejected (full or closed)
    std::uint64_t stalls = 0;   ///< producer waits due to a full queue
    std::size_t high_water = 0; ///< maximum observed depth
  };

  /// capacity == 0 (or kUnbounded) means unbounded.
  explicit BoundedQueue(std::size_t capacity = kUnbounded,
                        BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity == 0 ? kUnbounded : capacity), policy_(policy) {}

  PushResult Push(T value) {
    return PushImpl(std::move(value),
                    /*lossless=*/policy_ == BackpressurePolicy::kBlock);
  }

  /// Lossless push: waits for room even under kDropNewest. For elements
  /// that must never be dropped while the queue is open — punctuations
  /// carry transaction boundaries and EOS, and losing one desyncs merge
  /// alignment or hangs the consumer's natural-completion join.
  PushResult PushWait(T value) {
    return PushImpl(std::move(value), /*lossless=*/true);
  }

  /// Blocks until an element is available or the queue is closed.
  /// Returns nullopt when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    // Producers only ever wait on a finite capacity; unbounded queues skip
    // the per-element signal.
    if (capacity_ != kUnbounded) not_full_.notify_one();
    return value;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();  // wake producers blocked on a full queue
  }

  bool closed() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return queue_.size();
  }

  std::size_t capacity() const { return capacity_; }

  Stats stats() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return stats_;
  }

 private:
  PushResult PushImpl(T value, bool lossless) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
      ++stats_.dropped;
      return PushResult::kClosed;
    }
    if (queue_.size() >= capacity_) {
      if (!lossless) {
        ++stats_.dropped;
        return PushResult::kDropped;
      }
      ++stats_.stalls;
      not_full_.wait(lock,
                     [this] { return queue_.size() < capacity_ || closed_; });
      if (closed_) {
        ++stats_.dropped;
        return PushResult::kClosed;
      }
    }
    queue_.push_back(std::move(value));
    ++stats_.pushed;
    if (queue_.size() > stats_.high_water) stats_.high_water = queue_.size();
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  const std::size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  Stats stats_;
  bool closed_ = false;
};

/// Unbounded blocking queue — the historical name, now with close-safe push
/// semantics (push after Close is rejected instead of silently enqueued).
template <typename T>
using BlockingQueue = BoundedQueue<T>;

/// Shared consumer protocol for queue-fed operator chains (QueueHandoff,
/// PartitionBy lanes): re-publishes queued elements on the calling thread
/// until EOS or close, then upholds the close barrier — the queue is
/// closed so a producer racing the exit gets kClosed instead of feeding a
/// consumerless queue (or blocking forever in PushWait on a full one) —
/// and synthesizes the EOS a close rejected, because the downstream chain
/// (merge alignment, WaitForEos, ToTable's EOS flush) keys its own
/// shutdown off it.
template <typename T>
void DrainQueueInto(BoundedQueue<StreamElement<T>>& queue, Publisher<T>& out,
                    std::atomic<std::uint64_t>& data_count) {
  bool saw_eos = false;
  while (auto element = queue.Pop()) {
    if (element->is_data()) {
      data_count.fetch_add(1, std::memory_order_relaxed);
    }
    out.Publish(*element);
    if (element->is_punctuation() &&
        element->punctuation() == Punctuation::kEndOfStream) {
      saw_eos = true;
      break;
    }
  }
  queue.Close();
  if (!saw_eos) {
    out.Publish(StreamElement<T>(Punctuation::kEndOfStream));
  }
}

/// Decouples a producer chain from a consumer chain: enqueues upstream
/// elements and re-publishes them on a dedicated thread.
template <typename T>
class QueueHandoff : public OperatorBase, public Publisher<T> {
 public:
  struct Options {
    std::size_t queue_capacity = BoundedQueue<T>::kUnbounded;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
  };

  explicit QueueHandoff(Publisher<T>* input, Options options = {})
      : queue_(options.queue_capacity, options.policy) {
    input->Subscribe([this](const StreamElement<T>& e) {
      // Punctuations are never load-sheddable: dropping an EOS would hang
      // the natural-completion join, dropping a boundary tears batches.
      if (e.is_punctuation()) {
        (void)queue_.PushWait(e);
      } else {
        (void)queue_.Push(e);
      }
    });
  }

  ~QueueHandoff() override {
    Stop();
    Join();
  }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ =
        std::thread([this] { DrainQueueInto(queue_, *this, elements_); });
  }

  void Stop() override { queue_.Close(); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "QueueHandoff"; }

  OperatorStats stats() const override {
    const auto q = queue_.stats();
    OperatorStats s;
    s.elements = elements_.load(std::memory_order_relaxed);
    s.queue_depth = queue_.size();
    s.stalls = q.stalls;
    s.dropped = q.dropped;
    return s;
  }

 private:
  BoundedQueue<StreamElement<T>> queue_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<std::uint64_t> elements_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_QUEUE_H_
