// CSV ingestion/egress: a file source that parses rows into typed tuples
// and a sink that serializes a stream into a CSV file. Practical glue for
// feeding recorded device data (e.g. meter logs) into a topology.

#ifndef STREAMSI_STREAM_CSV_H_
#define STREAMSI_STREAM_CSV_H_

#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "common/status.h"
#include "stream/operator.h"

namespace streamsi {

/// Splits one CSV line on `sep` (no quoting support — data-plane format).
inline std::vector<std::string> SplitCsvLine(const std::string& line,
                                             char sep = ',') {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t end = line.find(sep, start);
    if (end == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return fields;
}

/// Reads a CSV file on its own thread; each row is parsed by `parser`
/// (return nullopt to skip malformed rows), then EOS.
template <typename T>
class CsvSource : public OperatorBase, public Publisher<T> {
 public:
  using Parser =
      std::function<std::optional<T>(const std::vector<std::string>&)>;

  CsvSource(std::string path, Parser parser, bool skip_header = false,
            char sep = ',')
      : path_(std::move(path)),
        parser_(std::move(parser)),
        skip_header_(skip_header),
        sep_(sep) {}

  ~CsvSource() override { Join(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ = std::thread([this] { Run(); });
  }

  void Stop() override { stopped_.store(true, std::memory_order_release); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "CsvSource"; }

  std::uint64_t parse_errors() const {
    return parse_errors_.load(std::memory_order_relaxed);
  }

 private:
  void Run() {
    std::ifstream in(path_);
    std::string line;
    Timestamp ts = 0;
    bool first = true;
    while (!stopped_.load(std::memory_order_acquire) &&
           std::getline(in, line)) {
      if (first && skip_header_) {
        first = false;
        continue;
      }
      first = false;
      if (line.empty()) continue;
      auto parsed = parser_(SplitCsvLine(line, sep_));
      if (!parsed.has_value()) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      this->Publish(StreamElement<T>(std::move(*parsed), ts++));
    }
    this->Publish(StreamElement<T>(Punctuation::kEndOfStream, ts));
  }

  std::string path_;
  Parser parser_;
  bool skip_header_;
  char sep_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> parse_errors_{0};
};

/// Writes each data element as one CSV row via `formatter`; flushes and
/// closes at EOS.
template <typename T>
class CsvSink : public OperatorBase {
 public:
  using Formatter = std::function<std::string(const T&)>;

  CsvSink(Publisher<T>* input, std::string path, Formatter formatter,
          std::string header = "")
      : out_(path), formatter_(std::move(formatter)) {
    if (!header.empty()) out_ << header << '\n';
    input->Subscribe([this](const StreamElement<T>& e) {
      std::lock_guard<std::mutex> guard(mutex_);
      if (e.is_data()) {
        out_ << formatter_(e.data()) << '\n';
        ++rows_;
      } else if (e.punctuation() == Punctuation::kEndOfStream) {
        out_.flush();
      }
    });
  }

  std::uint64_t rows() const { return rows_; }

  std::string_view name() const override { return "CsvSink"; }

 private:
  std::mutex mutex_;
  std::ofstream out_;
  Formatter formatter_;
  std::uint64_t rows_ = 0;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_CSV_H_
