// Stream sources: emit a finite or generated sequence of elements on their
// own thread, terminated by an EndOfStream punctuation.
//
// Chunked emission (Options::chunk_capacity > 0): data tuples accumulate
// in ONE reusable chunk (published synchronously, then cleared — no pool
// needed) and ship as a single PublishChunk when the chunk fills. Any
// punctuation in the stream flushes the partial chunk FIRST and is then
// published per-element, so downstream ordering is identical to per-tuple
// emission; EOS flushes the tail the same way.

#ifndef STREAMSI_STREAM_SOURCES_H_
#define STREAMSI_STREAM_SOURCES_H_

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

/// Emission knobs shared by the sources.
struct SourceOptions {
  /// Tuples per emitted chunk; 0 = per-element emission (classic path).
  std::size_t chunk_capacity = 0;
  /// Max age of a partial chunk before it is flushed anyway (0 = only
  /// full/boundary flushes). Useful for slow generators feeding chunked
  /// lanes.
  std::uint64_t chunk_linger_micros = 0;
};

/// Chunk accumulator shared by the source emit loops: one reusable chunk,
/// flush-reason accounting, linger tracking. Emitting-thread only.
template <typename T>
class SourceChunker {
 public:
  SourceChunker(Publisher<T>* out, const SourceOptions& options,
                ChunkBuildStats* stats)
      : out_(out), options_(options), stats_(stats) {
    if (enabled()) chunk_.emplace(options_.chunk_capacity);
  }

  bool enabled() const { return options_.chunk_capacity > 0; }

  void Data(const T& value, Timestamp ts) {
    if (chunk_->empty() && options_.chunk_linger_micros > 0) {
      opened_at_ = std::chrono::steady_clock::now();
    }
    chunk_->Append(value, ts);
    if (chunk_->full()) {
      Flush(ChunkFlushReason::kFull);
    } else if (LingerExpired()) {
      Flush(ChunkFlushReason::kTimeout);
    }
  }

  void Flush(ChunkFlushReason reason) {
    if (chunk_->empty()) return;
    stats_->chunks.fetch_add(1, std::memory_order_relaxed);
    stats_->tuples.fetch_add(chunk_->size(), std::memory_order_relaxed);
    switch (reason) {
      case ChunkFlushReason::kFull:
        stats_->flush_full.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChunkFlushReason::kBoundary:
        stats_->flush_boundary.fetch_add(1, std::memory_order_relaxed);
        break;
      case ChunkFlushReason::kTimeout:
        stats_->flush_timeout.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    out_->PublishChunk(chunk_->view());
    chunk_->Clear();
  }

 private:
  bool LingerExpired() const {
    if (options_.chunk_linger_micros == 0) return false;
    const auto age = std::chrono::steady_clock::now() - opened_at_;
    return std::chrono::duration_cast<std::chrono::microseconds>(age)
               .count() >=
           static_cast<std::int64_t>(options_.chunk_linger_micros);
  }

  Publisher<T>* out_;
  SourceOptions options_;
  ChunkBuildStats* stats_;
  std::optional<Chunk<T>> chunk_;
  std::chrono::steady_clock::time_point opened_at_{};
};

/// Emits a fixed vector of elements (data and punctuations), then EOS.
template <typename T>
class VectorSource : public OperatorBase, public Publisher<T> {
 public:
  explicit VectorSource(std::vector<StreamElement<T>> elements,
                        SourceOptions options = {})
      : elements_(std::move(elements)), options_(options) {}

  ~VectorSource() override { Join(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ = std::thread([this] {
      SourceChunker<T> chunker(this, options_, &build_stats_);
      Timestamp ts = 0;
      for (const auto& element : elements_) {
        if (stopped_.load(std::memory_order_acquire)) break;
        if (chunker.enabled() && element.is_data()) {
          chunker.Data(element.data(), element.ts());
        } else {
          // A punctuation must not overtake the tuples emitted before it.
          if (chunker.enabled()) chunker.Flush(ChunkFlushReason::kBoundary);
          this->Publish(element);
        }
        ++ts;
      }
      if (chunker.enabled()) chunker.Flush(ChunkFlushReason::kBoundary);
      this->Publish(StreamElement<T>(Punctuation::kEndOfStream, ts));
    });
  }

  void Stop() override { stopped_.store(true, std::memory_order_release); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "VectorSource"; }

  OperatorStats stats() const override {
    OperatorStats s;
    s.chunk_capacity = options_.chunk_capacity;
    s.AddChunkCounters(build_stats_);
    s.elements = s.chunk_tuples;
    return s;
  }

 private:
  std::vector<StreamElement<T>> elements_;
  SourceOptions options_;
  ChunkBuildStats build_stats_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

/// Pull-style generator: the callback produces the next element or nullopt
/// to end the stream.
template <typename T>
class GeneratorSource : public OperatorBase, public Publisher<T> {
 public:
  using Generator = std::function<std::optional<StreamElement<T>>()>;

  explicit GeneratorSource(Generator generator, SourceOptions options = {})
      : generator_(std::move(generator)), options_(options) {}

  ~GeneratorSource() override { Join(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ = std::thread([this] {
      SourceChunker<T> chunker(this, options_, &build_stats_);
      Timestamp ts = 0;
      while (!stopped_.load(std::memory_order_acquire)) {
        auto element = generator_();
        if (!element.has_value()) break;
        if (chunker.enabled() && element->is_data()) {
          chunker.Data(element->data(), element->ts());
        } else {
          if (chunker.enabled()) chunker.Flush(ChunkFlushReason::kBoundary);
          this->Publish(*element);
        }
        ++ts;
      }
      if (chunker.enabled()) chunker.Flush(ChunkFlushReason::kBoundary);
      this->Publish(StreamElement<T>(Punctuation::kEndOfStream, ts));
    });
  }

  void Stop() override { stopped_.store(true, std::memory_order_release); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "GeneratorSource"; }

  OperatorStats stats() const override {
    OperatorStats s;
    s.chunk_capacity = options_.chunk_capacity;
    s.AddChunkCounters(build_stats_);
    s.elements = s.chunk_tuples;
    return s;
  }

 private:
  Generator generator_;
  SourceOptions options_;
  ChunkBuildStats build_stats_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_SOURCES_H_
