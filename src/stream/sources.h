// Stream sources: emit a finite or generated sequence of elements on their
// own thread, terminated by an EndOfStream punctuation.

#ifndef STREAMSI_STREAM_SOURCES_H_
#define STREAMSI_STREAM_SOURCES_H_

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

/// Emits a fixed vector of elements (data and punctuations), then EOS.
template <typename T>
class VectorSource : public OperatorBase, public Publisher<T> {
 public:
  explicit VectorSource(std::vector<StreamElement<T>> elements)
      : elements_(std::move(elements)) {}

  ~VectorSource() override { Join(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ = std::thread([this] {
      Timestamp ts = 0;
      for (const auto& element : elements_) {
        if (stopped_.load(std::memory_order_acquire)) break;
        this->Publish(element);
        ++ts;
      }
      this->Publish(StreamElement<T>(Punctuation::kEndOfStream, ts));
    });
  }

  void Stop() override { stopped_.store(true, std::memory_order_release); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "VectorSource"; }

 private:
  std::vector<StreamElement<T>> elements_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

/// Pull-style generator: the callback produces the next element or nullopt
/// to end the stream.
template <typename T>
class GeneratorSource : public OperatorBase, public Publisher<T> {
 public:
  using Generator = std::function<std::optional<StreamElement<T>>()>;

  explicit GeneratorSource(Generator generator)
      : generator_(std::move(generator)) {}

  ~GeneratorSource() override { Join(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ = std::thread([this] {
      Timestamp ts = 0;
      while (!stopped_.load(std::memory_order_acquire)) {
        auto element = generator_();
        if (!element.has_value()) break;
        this->Publish(*element);
        ++ts;
      }
      this->Publish(StreamElement<T>(Punctuation::kEndOfStream, ts));
    });
  }

  void Stop() override { stopped_.store(true, std::memory_order_release); }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  std::string_view name() const override { return "GeneratorSource"; }

 private:
  Generator generator_;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_SOURCES_H_
