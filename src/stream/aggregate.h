// Aggregation operators over window batches and running grouped
// aggregates. Together with ToTable these are the "stateful stream
// operators such as windows or aggregates" whose state becomes a queryable
// table (§3).

#ifndef STREAMSI_STREAM_AGGREGATE_H_
#define STREAMSI_STREAM_AGGREGATE_H_

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>

#include "stream/window.h"

namespace streamsi {

/// Folds each WindowBatch into one output value.
template <typename T, typename Acc>
class WindowAggregate : public OperatorBase, public Publisher<Acc> {
 public:
  using Folder = std::function<void(Acc&, const T&)>;

  WindowAggregate(Publisher<WindowBatch<T>>* input, Acc init, Folder folder)
      : init_(std::move(init)), folder_(std::move(folder)) {
    input->Subscribe([this](const StreamElement<WindowBatch<T>>& e) {
      if (e.is_data()) {
        Acc acc = init_;
        for (const T& element : e.data().elements) folder_(acc, element);
        this->Publish(StreamElement<Acc>(std::move(acc), e.ts()));
      } else {
        this->Publish(e.template ForwardPunctuation<Acc>());
      }
    });
  }

  std::string_view name() const override { return "WindowAggregate"; }

 private:
  Acc init_;
  Folder folder_;
};

/// Simple numeric summary used by the canned aggregates.
struct NumericSummary {
  std::uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  double avg() const { return count == 0 ? 0.0 : sum / count; }
};

/// Folds a window of T into a NumericSummary via a value extractor.
template <typename T>
WindowAggregate<T, NumericSummary>* MakeSummaryAggregate(
    Publisher<WindowBatch<T>>* input, std::function<double(const T&)> value) {
  return new WindowAggregate<T, NumericSummary>(
      input, NumericSummary{},
      [value](NumericSummary& acc, const T& element) {
        acc.Add(value(element));
      });
}

/// Per-key running aggregate: emits (key, aggregate) after every update.
template <typename T, typename K, typename Acc>
class GroupedAggregate : public OperatorBase,
                         public Publisher<std::pair<K, Acc>> {
 public:
  using KeyExtractor = std::function<K(const T&)>;
  using Folder = std::function<void(Acc&, const T&)>;

  GroupedAggregate(Publisher<T>* input, KeyExtractor key, Acc init,
                   Folder folder)
      : key_(std::move(key)), init_(std::move(init)), folder_(std::move(folder)) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          if (e.is_data()) {
            const K k = key_(e.data());
            auto [it, inserted] = groups_.try_emplace(k, init_);
            (void)inserted;
            folder_(it->second, e.data());
            this->Publish(StreamElement<std::pair<K, Acc>>(
                std::make_pair(k, it->second), e.ts()));
          } else {
            this->Publish(e.template ForwardPunctuation<std::pair<K, Acc>>());
          }
        },
        // Chunk fast path: fold the whole chunk in one loop and emit the
        // per-update (key, aggregate) pairs as one output chunk — the same
        // output sequence the per-tuple path produces.
        [this](const ChunkView<T>& view) {
          if (!scratch_ || scratch_->capacity() < view.size()) {
            scratch_.emplace(view.size());
          }
          for (std::size_t i = 0; i < view.size(); ++i) {
            const T& data = view[i];
            const K k = key_(data);
            auto [it, inserted] = groups_.try_emplace(k, init_);
            (void)inserted;
            folder_(it->second, data);
            scratch_->Append(std::make_pair(k, it->second), view.ts(i));
          }
          this->PublishChunk(scratch_->view());
          scratch_->Clear();
        });
  }

  /// Current state of all groups (the operator's internal table).
  const std::unordered_map<K, Acc>& groups() const { return groups_; }

  std::string_view name() const override { return "GroupedAggregate"; }

 private:
  KeyExtractor key_;
  Acc init_;
  Folder folder_;
  std::unordered_map<K, Acc> groups_;
  std::optional<Chunk<std::pair<K, Acc>>> scratch_;  ///< delivering-thread only
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_AGGREGATE_H_
