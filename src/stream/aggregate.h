// Aggregation operators over window batches and running grouped
// aggregates. Together with ToTable these are the "stateful stream
// operators such as windows or aggregates" whose state becomes a queryable
// table (§3).

#ifndef STREAMSI_STREAM_AGGREGATE_H_
#define STREAMSI_STREAM_AGGREGATE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stream/window.h"

namespace streamsi {

/// Folds each WindowBatch into one output value.
template <typename T, typename Acc>
class WindowAggregate : public OperatorBase, public Publisher<Acc> {
 public:
  using Folder = std::function<void(Acc&, const T&)>;

  WindowAggregate(Publisher<WindowBatch<T>>* input, Acc init, Folder folder)
      : init_(std::move(init)), folder_(std::move(folder)) {
    input->Subscribe([this](const StreamElement<WindowBatch<T>>& e) {
      if (e.is_data()) {
        Acc acc = init_;
        for (const T& element : e.data().elements) folder_(acc, element);
        this->Publish(StreamElement<Acc>(std::move(acc), e.ts()));
      } else {
        this->Publish(e.template ForwardPunctuation<Acc>());
      }
    });
  }

  std::string_view name() const override { return "WindowAggregate"; }

 private:
  Acc init_;
  Folder folder_;
};

/// Simple numeric summary used by the canned aggregates.
struct NumericSummary {
  std::uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
  }

  double avg() const { return count == 0 ? 0.0 : sum / count; }
};

/// Folds a window of T into a NumericSummary via a value extractor.
template <typename T>
WindowAggregate<T, NumericSummary>* MakeSummaryAggregate(
    Publisher<WindowBatch<T>>* input, std::function<double(const T&)> value) {
  return new WindowAggregate<T, NumericSummary>(
      input, NumericSummary{},
      [value](NumericSummary& acc, const T& element) {
        acc.Add(value(element));
      });
}

/// Per-key running aggregate: emits (key, aggregate) after every update.
///
/// Chunk handling comes in two tiers. The scalar chunk path hoists key
/// extraction into its own pass per chunk (exactly one extractor call per
/// tuple — pinned by a regression test) before folding. The VECTORIZED
/// path (built via MakeVectorizedGroupedAggregate) hash-partitions each
/// chunk in one software-pipelined pass: keys and group hashes are
/// extracted a few tuples ahead of their probe-and-fold (one extractor
/// call per tuple), slots of an open-addressed accumulator table are
/// prefetched off those hashes, and runs of equal keys reuse the resolved
/// slot — no per-tuple std::function dispatch, no per-tuple unordered_map
/// probe, and ONE random access per tuple (the accumulator lives inline
/// in the table slot, not behind a map-node pointer). Both paths produce the exact
/// per-update (key, aggregate) output sequence of the per-tuple engine.
/// In kernel mode the flat table is the authoritative state — the
/// per-element channel folds into the same slots — and `groups()`
/// materializes it into the map view on demand.
template <typename T, typename K, typename Acc>
class GroupedAggregate : public OperatorBase,
                         public Publisher<std::pair<K, Acc>> {
 public:
  using KeyExtractor = std::function<K(const T&)>;
  using Folder = std::function<void(Acc&, const T&)>;

  GroupedAggregate(Publisher<T>* input, KeyExtractor key, Acc init,
                   Folder folder)
      : key_(std::move(key)), init_(std::move(init)), folder_(std::move(folder)) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) { OnElement(e); },
        [this](const ChunkView<T>& view) { ScalarChunk(view); });
  }

  /// Kernelized constructor (use MakeVectorizedGroupedAggregate): `key`
  /// and `fold` are copied as inlinable functors into the chunk kernel;
  /// the std::function members still serve the per-tuple channel.
  struct KernelTag {};
  template <typename KeyFn, typename FoldFn>
  GroupedAggregate(KernelTag, Publisher<T>* input, KeyFn key, Acc init,
                   FoldFn fold)
      : key_(key), init_(std::move(init)), folder_(fold) {
    input->SubscribeWith(
        [this, key, fold](const StreamElement<T>& e) {
          OnElementKernel(e, key, fold);
        },
        [this, key, fold](const ChunkView<T>& view) {
          KernelChunk(view, key, fold);
        });
  }

  /// Current state of all groups. In kernel mode the flat accumulator
  /// table holds the live state; it is materialized into the map view
  /// here (and only here), so the accessor stays cheap when nothing
  /// changed and costs one pass over the table after kernel updates.
  const std::unordered_map<K, Acc>& groups() const {
    if (groups_dirty_) {
      for (const AccSlot& s : index_) {
        if (s.used) groups_.insert_or_assign(s.key, s.acc);
      }
      groups_dirty_ = false;
    }
    return groups_;
  }

  std::string_view name() const override { return "GroupedAggregate"; }

  OperatorStats stats() const override {
    OperatorStats s;
    s.kernel_chunks = kernel_chunks_.load(std::memory_order_relaxed);
    s.fallback_chunks = fallback_chunks_.load(std::memory_order_relaxed);
    s.kernel_tuples_in = kernel_tuples_.load(std::memory_order_relaxed);
    s.kernel_tuples_out = s.kernel_tuples_in;  // one update pair per tuple
    s.chunks = s.kernel_chunks + s.fallback_chunks;
    return s;
  }

 private:
  using GroupNode = std::pair<const K, Acc>;

  /// One group of the kernel-mode flat table: hash + key + live
  /// accumulator, all inline so a probe touches exactly one slot.
  struct AccSlot {
    std::size_t hash = 0;
    K key{};
    Acc acc{};
    bool used = false;
  };

  void OnElement(const StreamElement<T>& e) {
    if (e.is_data()) {
      const K k = key_(e.data());
      auto [it, inserted] = groups_.try_emplace(k, init_);
      (void)inserted;
      folder_(it->second, e.data());
      this->Publish(StreamElement<std::pair<K, Acc>>(
          std::make_pair(k, it->second), e.ts()));
    } else {
      this->Publish(e.template ForwardPunctuation<std::pair<K, Acc>>());
    }
  }

  /// Per-element channel of a kernel-mode operator: folds into the flat
  /// accumulator table (the kernel-mode source of truth) so mixed
  /// chunk/element delivery never splits state across two tables.
  template <typename KeyFn, typename FoldFn>
  void OnElementKernel(const StreamElement<T>& e, const KeyFn& key,
                       const FoldFn& fold) {
    if (!e.is_data()) {
      this->Publish(e.template ForwardPunctuation<std::pair<K, Acc>>());
      return;
    }
    const K k = key(e.data());
    AccSlot* slot = ProbeOrInsert(k, std::hash<K>{}(k));
    fold(slot->acc, e.data());
    groups_dirty_ = true;
    this->Publish(StreamElement<std::pair<K, Acc>>(
        std::make_pair(slot->key, slot->acc), e.ts()));
  }

  /// Scalar chunk path: extraction hoisted into one pass per chunk, then
  /// a fold pass — exactly one extractor call per tuple.
  void ScalarChunk(const ChunkView<T>& view) {
    const std::size_t n = view.size();
    if (n == 0) return;
    fallback_chunks_.fetch_add(1, std::memory_order_relaxed);
    if (!scratch_ || scratch_->capacity() < n) scratch_.emplace(n);
    keys_.clear();
    for (std::size_t i = 0; i < n; ++i) keys_.push_back(key_(view[i]));
    for (std::size_t i = 0; i < n; ++i) {
      auto [it, inserted] = groups_.try_emplace(keys_[i], init_);
      (void)inserted;
      folder_(it->second, view[i]);
      scratch_->Append(std::make_pair(keys_[i], it->second), view.ts(i));
    }
    this->PublishChunk(scratch_->view());
    scratch_->Clear();
  }

  /// Vectorized chunk path: one software-pipelined pass. Tuple i+D's key
  /// and group hash are extracted D iterations ahead of its fold (still
  /// exactly ONE extractor call per tuple — pinned by a regression test)
  /// and its table slot prefetched, so the dependent random probe load is
  /// already in flight when the fold reaches it. The accumulator lives
  /// inline in the slot (one random access per tuple), and a run of equal
  /// keys reuses the resolved slot without re-probing.
  template <typename KeyFn, typename FoldFn>
  void KernelChunk(const ChunkView<T>& view, const KeyFn& key,
                   const FoldFn& fold) {
    const std::size_t n = view.size();
    if (n == 0) return;
    kernel_chunks_.fetch_add(1, std::memory_order_relaxed);
    kernel_tuples_.fetch_add(n, std::memory_order_relaxed);
    if (!scratch_ || scratch_->capacity() < n) scratch_.emplace(n);
    constexpr std::size_t D = 32;  // pipeline depth (power of two)
    K kq[D];
    std::size_t hq[D];
    T rowq[D];
    Timestamp tsq[D];
    auto [out, out_ts] = scratch_->ResizeForOverwrite(n);
    // The loop body is specialized on density so a selected view loads its
    // selection entry exactly once per tuple and a dense view skips the
    // indirection entirely. The table pointer/capacity live in locals,
    // refreshed only when an insert may have grown the table, so the hot
    // loop never reloads them across the output stores.
    const auto run = [&](auto is_dense) {
      const T* rows = view.data();
      const Timestamp* tss = view.ts_data();
      const std::uint32_t* sel = view.selection();
      const auto stage = [&](std::size_t j) {
        const std::size_t m = j & (D - 1);
        std::size_t base;
        if constexpr (decltype(is_dense)::value) {
          base = j;
        } else {
          base = sel[j];
        }
        rowq[m] = rows[base];
        tsq[m] = tss[base];
        const K k = key(rowq[m]);
        hq[m] = std::hash<K>{}(k);
        kq[m] = k;
      };
      AccSlot* idx = index_.data();
      std::size_t icap = index_.size();
      AccSlot* slot = nullptr;
      // Oversized chunks are processed in L1-friendly blocks so the hot
      // scratch (ring + recent output rows) stays cache-resident whatever
      // the transport chunk size is.
      constexpr std::size_t B = 256;
      for (std::size_t lo = 0; lo < n; lo += B) {
        const std::size_t hi = lo + B < n ? lo + B : n;
        const std::size_t lead = hi - lo < D ? hi : lo + D;
        for (std::size_t j = lo; j < lead; ++j) stage(j);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t m = i & (D - 1);
          if (slot == nullptr || !(kq[m] == slot->key)) {
            // Inline the overwhelmingly common first-probe hit; collisions,
            // inserts and growth take the out-of-line path.
            AccSlot* first = icap != 0 ? &idx[hq[m] & (icap - 1)] : nullptr;
            if (first != nullptr && first->used && first->hash == hq[m] &&
                first->key == kq[m]) {
              slot = first;
            } else {
              slot = ProbeOrInsert(kq[m], hq[m]);
              idx = index_.data();
              icap = index_.size();
            }
          }
          fold(slot->acc, rowq[m]);
          out[i] = std::make_pair(slot->key, slot->acc);
          out_ts[i] = tsq[m];
          // Refill the consumed ring slot with tuple i+D and start its
          // table slot's load D iterations before the probe needs it.
          if (i + D < hi) {
            stage(i + D);
#if defined(__GNUC__) || defined(__clang__)
            if (icap != 0) __builtin_prefetch(&idx[hq[m] & (icap - 1)]);
#endif
          }
        }
      }
    };
    if (view.dense()) {
      run(std::true_type{});
    } else {
      run(std::false_type{});
    }
    groups_dirty_ = true;
    this->PublishChunk(scratch_->view());
  }

  /// Open-addressed flat accumulator table: kernel-mode groups live inline
  /// in the slots (one random access per probe, no map-node indirection).
  AccSlot* ProbeOrInsert(const K& k, std::size_t h) {
    if (index_.empty() || (index_used_ + 1) * 4 > index_.size() * 3) {
      GrowIndex();
    }
    const std::size_t mask = index_.size() - 1;
    std::size_t pos = h & mask;
    while (true) {
      AccSlot& slot = index_[pos];
      if (!slot.used) {
        slot.used = true;
        slot.hash = h;
        slot.key = k;
        slot.acc = init_;
        ++index_used_;
        return &slot;
      }
      if (slot.hash == h && slot.key == k) return &slot;
      pos = (pos + 1) & mask;
    }
  }

  void GrowIndex() {
    const std::size_t cap = index_.empty() ? 1024 : index_.size() * 2;
    std::vector<AccSlot> old = std::move(index_);
    index_.assign(cap, AccSlot{});
    const std::size_t mask = cap - 1;
    for (AccSlot& s : old) {
      if (!s.used) continue;
      std::size_t pos = s.hash & mask;
      while (index_[pos].used) pos = (pos + 1) & mask;
      index_[pos] = std::move(s);
    }
  }

  KeyExtractor key_;
  Acc init_;
  Folder folder_;
  /// Scalar/per-tuple-mode state; in kernel mode it is only the lazily
  /// materialized view served by groups().
  mutable std::unordered_map<K, Acc> groups_;
  mutable bool groups_dirty_ = false;
  std::optional<Chunk<std::pair<K, Acc>>> scratch_;  ///< delivering-thread only
  std::vector<K> keys_;              ///< scalar-path scratch; delivering-thread only
  std::vector<AccSlot> index_;       ///< kernel-mode accumulator table
  std::size_t index_used_ = 0;
  std::atomic<std::uint64_t> kernel_chunks_{0};
  std::atomic<std::uint64_t> fallback_chunks_{0};
  std::atomic<std::uint64_t> kernel_tuples_{0};
};

/// Builds a GroupedAggregate whose chunk path hash-partitions each chunk
/// once (extract / hash / probe-and-fold passes) instead of probing the
/// group map per tuple. `key` and `fold` must be cheap, capture-light
/// functors.
template <typename T, typename K, typename Acc, typename KeyFn,
          typename FoldFn>
GroupedAggregate<T, K, Acc>* MakeVectorizedGroupedAggregate(Publisher<T>* input,
                                                            KeyFn key,
                                                            Acc init,
                                                            FoldFn fold) {
  static_assert(std::is_invocable_r_v<K, KeyFn, const T&>,
                "KeyFn must map const T& -> K");
  return new GroupedAggregate<T, K, Acc>(
      typename GroupedAggregate<T, K, Acc>::KernelTag{}, input, key,
      std::move(init), fold);
}

}  // namespace streamsi

#endif  // STREAMSI_STREAM_AGGREGATE_H_
