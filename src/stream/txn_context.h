// StreamTxnContext: shares one transaction among all linking operators of
// a stream query.
//
// A stream query with multiple TO_TABLE operators updates multiple states
// "atomically with each commit" (§3); this context carries the current
// transaction between them. Each BOT punctuation begins a transaction and
// pre-registers every participating state; each operator commits its own
// part via CommitState — the operator that flips the last flag becomes the
// coordinator of the global commit (§4.3).

#ifndef STREAMSI_STREAM_TXN_CONTEXT_H_
#define STREAMSI_STREAM_TXN_CONTEXT_H_

#include <memory>
#include <vector>

#include "common/latch.h"
#include "core/transaction_manager.h"

namespace streamsi {

class StreamTxnContext {
 public:
  explicit StreamTxnContext(TransactionManager* manager)
      : manager_(manager) {}

  /// Declares a state as participant of this query's transactions (called
  /// by ToTable at construction).
  void AddParticipant(StateId state) {
    std::lock_guard<SpinLock> guard(lock_);
    for (StateId s : participants_) {
      if (s == state) return;
    }
    participants_.push_back(state);
  }

  /// Snapshot of the participant set, copied under the lock: topologies
  /// wire lanes concurrently, so AddParticipant may reallocate the vector
  /// while another operator enumerates it — never hand out a reference.
  std::vector<StateId> participants() const {
    std::lock_guard<SpinLock> guard(lock_);
    return participants_;
  }

  /// Begins a transaction (BOT) if none is active, registering all
  /// participants so the consistency protocol knows the full state set.
  /// A BOT punctuation also clears batch poisoning (see Current()).
  Status Begin() {
    std::lock_guard<SpinLock> guard(lock_);
    poisoned_ = false;
    return BeginLocked();
  }

  /// Current transaction (begins one when none is active). If the previous
  /// transaction of this batch aborted underneath us (e.g. a wait-die
  /// victim under S2PL), the rest of the batch is *poisoned*: writing the
  /// remaining tuples in a fresh transaction would commit a partial tuple
  /// set and tear the batch across states. Poisoned batches report Aborted
  /// until the next explicit BOT / batch boundary.
  Result<Transaction*> Current() {
    std::lock_guard<SpinLock> guard(lock_);
    if (handle_ != nullptr && !handle_->txn().running()) {
      // Died mid-batch without a COMMIT/ROLLBACK punctuation.
      poisoned_ = handle_->txn().phase() == TxnPhase::kAborted;
      handle_.reset();
    }
    if (poisoned_) return Status::Aborted("batch poisoned by earlier abort");
    if (handle_ == nullptr) {
      STREAMSI_RETURN_NOT_OK(BeginLocked());
    }
    return &handle_->txn();
  }

  bool HasActive() {
    std::lock_guard<SpinLock> guard(lock_);
    return handle_ != nullptr && handle_->txn().running();
  }

  /// Operator-level commit of `state`'s part; resets the handle once the
  /// transaction finished globally (committed or aborted). A COMMIT or
  /// ROLLBACK punctuation ends the batch, clearing any poisoning.
  Status CommitState(StateId state) {
    std::lock_guard<SpinLock> guard(lock_);
    poisoned_ = false;
    if (handle_ == nullptr) return Status::OK();  // nothing to commit
    const Status status = manager_->CommitState(handle_->txn(), state);
    MaybeResetLocked();
    return status;
  }

  Status AbortState(StateId state) {
    std::lock_guard<SpinLock> guard(lock_);
    poisoned_ = false;
    if (handle_ == nullptr) return Status::OK();
    const Status status = manager_->AbortState(handle_->txn(), state);
    MaybeResetLocked();
    return status;
  }

  /// Fails the current batch: aborts the active transaction (rolling back
  /// every write the batch already made) and drops all later tuples until
  /// the next batch boundary (BOT/COMMIT/ROLLBACK punctuation). Operators
  /// call this when one tuple of the batch could not be applied — letting
  /// the remaining tuples commit would publish a partially-applied batch,
  /// tearing it across states and lanes.
  void PoisonBatch() {
    std::lock_guard<SpinLock> guard(lock_);
    if (handle_ != nullptr && handle_->txn().running()) {
      (void)manager_->Abort(handle_->txn());
    }
    MaybeResetLocked();
    poisoned_ = true;
  }

  /// Commits everything outstanding (used at EOS).
  Status CommitAll() {
    std::lock_guard<SpinLock> guard(lock_);
    poisoned_ = false;
    if (handle_ == nullptr) return Status::OK();
    const Status status = manager_->Commit(handle_->txn());
    MaybeResetLocked();
    return status;
  }

  TransactionManager* manager() { return manager_; }

 private:
  Status BeginLocked() {
    if (handle_ != nullptr && handle_->txn().running()) {
      return Status::OK();  // idempotent BOT
    }
    if (!participants_.empty()) {
      // This batch will write its participants; probe write admission now
      // so a read-only database (degraded, or an unpromoted replication
      // follower) fails the batch at BOT instead of after a batch of work
      // that can only be rejected at commit.
      STREAMSI_RETURN_NOT_OK(manager_->AdmitWrites());
    }
    auto handle = manager_->Begin();
    if (!handle.ok()) return handle.status();
    handle_ = std::move(handle).value();
    for (StateId state : participants_) {
      STREAMSI_RETURN_NOT_OK(manager_->RegisterState(handle_->txn(), state));
    }
    return Status::OK();
  }

  void MaybeResetLocked() {
    if (handle_ != nullptr && !handle_->txn().running()) handle_.reset();
  }

  TransactionManager* manager_;
  mutable SpinLock lock_;
  std::vector<StateId> participants_;
  std::unique_ptr<TransactionHandle> handle_;
  /// The current batch's transaction aborted; drop the batch's remaining
  /// writes instead of committing a partial tuple set.
  bool poisoned_ = false;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_TXN_CONTEXT_H_
