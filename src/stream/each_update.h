// EachUpdateToStream: the per-modification trigger policy of TO_STREAM
// (§3 "Trigger policy ... possible policies are to consider each tuple
// modification or to rely on transaction commits").
//
// Whereas ToStream (kOnCommit) emits atomically visible changes, this
// operator converts a ToTable's pass-through into ChangeEvents immediately
// — including changes of transactions that may later abort. Events carry
// commit_ts == 0 to mark them as not-yet-committed.

#ifndef STREAMSI_STREAM_EACH_UPDATE_H_
#define STREAMSI_STREAM_EACH_UPDATE_H_

#include "stream/operator.h"
#include "stream/to_stream.h"

namespace streamsi {

template <typename T, typename K, typename V>
class EachUpdateToStream : public OperatorBase,
                           public Publisher<ChangeEvent<K, V>> {
 public:
  using KeyExtractor = std::function<K(const T&)>;
  using ValueExtractor = std::function<V(const T&)>;
  using DeletePredicate = std::function<bool(const T&)>;
  using Condition = std::function<bool(const ChangeEvent<K, V>&)>;

  /// @param input      the pass-through output of a ToTable operator
  /// @param condition  optional emit filter (nullptr = every update)
  EachUpdateToStream(Publisher<T>* input, KeyExtractor key,
                     ValueExtractor value,
                     DeletePredicate is_delete = nullptr,
                     Condition condition = nullptr)
      : key_(std::move(key)),
        value_(std::move(value)),
        is_delete_(std::move(is_delete)),
        condition_(std::move(condition)) {
    input->Subscribe([this](const StreamElement<T>& e) {
      if (!e.is_data()) {
        this->Publish(e.template ForwardPunctuation<ChangeEvent<K, V>>());
        return;
      }
      ChangeEvent<K, V> event;
      event.key = key_(e.data());
      event.commit_ts = 0;  // not committed (yet)
      if (!is_delete_ || !is_delete_(e.data())) {
        event.value = value_(e.data());
      }
      if (condition_ && !condition_(event)) return;
      this->Publish(
          StreamElement<ChangeEvent<K, V>>(std::move(event), e.ts()));
    });
  }

  std::string_view name() const override { return "EachUpdateToStream"; }

 private:
  KeyExtractor key_;
  ValueExtractor value_;
  DeletePredicate is_delete_;
  Condition condition_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_EACH_UPDATE_H_
