// Punctuations: control elements embedded in a stream (Tucker et al. 2003,
// the paper's reference [19]).
//
// §3 "Transaction boundaries": in the data-centric approach, transaction
// boundaries (BOT, COMMIT, ROLLBACK) are marked by dedicated stream
// elements; the other stream elements are interpreted as insert/update (or
// delete) operations.

#ifndef STREAMSI_STREAM_PUNCTUATION_H_
#define STREAMSI_STREAM_PUNCTUATION_H_

namespace streamsi {

enum class Punctuation : unsigned char {
  kNone = 0,         ///< not a punctuation (data element)
  kBeginTxn = 1,     ///< BOT: the following elements belong to one txn
  kCommitTxn = 2,    ///< COMMIT of the current transaction
  kRollbackTxn = 3,  ///< ROLLBACK of the current transaction
  kEndOfStream = 4,  ///< no more elements will arrive
};

inline const char* PunctuationName(Punctuation p) {
  switch (p) {
    case Punctuation::kNone:
      return "none";
    case Punctuation::kBeginTxn:
      return "BOT";
    case Punctuation::kCommitTxn:
      return "COMMIT";
    case Punctuation::kRollbackTxn:
      return "ROLLBACK";
    case Punctuation::kEndOfStream:
      return "EOS";
  }
  return "?";
}

}  // namespace streamsi

#endif  // STREAMSI_STREAM_PUNCTUATION_H_
