// Operator plumbing: push-based publish/subscribe, as in PipeFabric where a
// query is a Topology — "a graph where each node is an operator and the
// edges represent their subscribed streams" (§4.1).
//
// Threading model: each source pushes its elements through the downstream
// chain on the source's thread (synchronous calls). Subscriptions must be
// set up before Topology::Start().

#ifndef STREAMSI_STREAM_OPERATOR_H_
#define STREAMSI_STREAM_OPERATOR_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "stream/element.h"

namespace streamsi {

/// Base for all operators so a Topology can own them uniformly.
class OperatorBase {
 public:
  virtual ~OperatorBase() = default;
  /// Called by Topology::Start (sources spawn their thread here).
  virtual void Start() {}
  /// Cooperative stop signal.
  virtual void Stop() {}
  /// Blocks until the operator finished (sources: thread joined).
  virtual void Join() {}
  virtual std::string_view name() const = 0;
};

/// Typed output port.
template <typename T>
class Publisher {
 public:
  using Subscriber = std::function<void(const StreamElement<T>&)>;

  /// Registers a downstream consumer. Not thread-safe; call before Start().
  void Subscribe(Subscriber subscriber) {
    subscribers_.push_back(std::move(subscriber));
  }

  void Publish(const StreamElement<T>& element) {
    for (auto& subscriber : subscribers_) subscriber(element);
  }

  std::size_t subscriber_count() const { return subscribers_.size(); }

 private:
  std::vector<Subscriber> subscribers_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_OPERATOR_H_
