// Operator plumbing: push-based publish/subscribe, as in PipeFabric where a
// query is a Topology — "a graph where each node is an operator and the
// edges represent their subscribed streams" (§4.1).
//
// Threading model: each source pushes its elements through the downstream
// chain on the source's thread (synchronous calls). Subscriptions must be
// set up before Topology::Start() — Start freezes every publisher, and a
// late Subscribe is refused (it would race the publishing thread's
// unguarded subscriber list).
//
// Chunked delivery: a publisher carries two channels per subscriber — the
// mandatory per-element callback and an optional OnChunk callback. When an
// upstream ships a chunk, subscribers that registered the chunk callback
// get the whole ChunkView in one call; everyone else gets the automatic
// per-tuple fallback (one StreamElement per tuple, in order). Punctuations
// always travel per-element, so the §3 boundary contract is identical on
// both channels.

#ifndef STREAMSI_STREAM_OPERATOR_H_
#define STREAMSI_STREAM_OPERATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "stream/chunk.h"
#include "stream/element.h"

namespace streamsi {

/// Point-in-time diagnostics of one operator (queue-backed operators report
/// depth/backpressure; pure pass-through operators report zeros).
struct OperatorStats {
  std::uint64_t elements = 0;     ///< data elements processed/forwarded
  std::uint64_t queue_depth = 0;  ///< elements currently queued
  std::uint64_t stalls = 0;       ///< producer waits due to backpressure
  std::uint64_t dropped = 0;      ///< elements rejected (drop policy/close)

  // Chunked-execution observability (zero for per-tuple operators).
  std::uint64_t chunk_capacity = 0;  ///< configured tuples/chunk (0 = off)
  std::uint64_t chunks = 0;          ///< chunks flushed/processed
  std::uint64_t chunk_tuples = 0;    ///< data tuples carried inside chunks
  std::uint64_t flush_full = 0;      ///< flushes because the chunk filled
  std::uint64_t flush_boundary = 0;  ///< flushes forced by a punctuation
  std::uint64_t flush_timeout = 0;   ///< flushes forced by linger expiry
  std::uint64_t misaligned = 0;      ///< merge boundary-misalignment recoveries

  // Vectorized-kernel observability: a kernelized operator counts every
  // chunk it ran through its columnar/vectorized kernel vs the per-tuple
  // scalar fallback, so a silently-degraded fallback path (e.g. selected
  // input reaching a dense-only kernel) shows up in StatsReport().
  std::uint64_t kernel_chunks = 0;      ///< chunks through the kernel
  std::uint64_t fallback_chunks = 0;    ///< chunks on the scalar fallback
  std::uint64_t kernel_tuples_in = 0;   ///< tuples entering the kernel
  std::uint64_t kernel_tuples_out = 0;  ///< tuples surviving the kernel

  /// Mean occupancy of flushed chunks in [0, 1] (0 when not chunking).
  double chunk_fill_ratio() const {
    if (chunks == 0 || chunk_capacity == 0) return 0.0;
    return static_cast<double>(chunk_tuples) /
           (static_cast<double>(chunks) * static_cast<double>(chunk_capacity));
  }

  /// Fraction of kernel input tuples that survived (1.0 for projections,
  /// the pass rate for filters; 0 when no kernel ran).
  double kernel_selectivity() const {
    if (kernel_tuples_in == 0) return 0.0;
    return static_cast<double>(kernel_tuples_out) /
           static_cast<double>(kernel_tuples_in);
  }

  /// Fraction of chunk deliveries that took the vectorized kernel.
  double kernel_hit_ratio() const {
    const std::uint64_t total = kernel_chunks + fallback_chunks;
    if (total == 0) return 0.0;
    return static_cast<double>(kernel_chunks) / static_cast<double>(total);
  }

  /// Folds a builder's flush counters into this snapshot.
  void AddChunkCounters(const ChunkBuildStats& build) {
    chunks += build.chunks.load(std::memory_order_relaxed);
    chunk_tuples += build.tuples.load(std::memory_order_relaxed);
    flush_full += build.flush_full.load(std::memory_order_relaxed);
    flush_boundary += build.flush_boundary.load(std::memory_order_relaxed);
    flush_timeout += build.flush_timeout.load(std::memory_order_relaxed);
  }
};

/// Base for all operators so a Topology can own them uniformly.
class OperatorBase {
 public:
  virtual ~OperatorBase() = default;
  /// Called by Topology::Start (sources/lanes spawn their threads here).
  /// Must be idempotent — lifecycle code may retry.
  virtual void Start() {}
  /// Cooperative stop signal. Must be idempotent.
  virtual void Stop() {}
  /// Blocks until the operator finished (sources: thread joined).
  virtual void Join() {}
  virtual std::string_view name() const = 0;
  /// Diagnostics snapshot; safe to call while the topology runs.
  virtual OperatorStats stats() const { return {}; }
};

/// Subscription freeze latch. Topology::Start freezes every publisher it
/// can reach (operators implementing this interface plus PartitionBy's
/// internal lane publishers); a Subscribe after the freeze is REFUSED —
/// the subscriber list is read without a latch on the publishing thread,
/// so a late registration would be a data race, and before this guard it
/// silently was one.
class SubscriptionFreezer {
 public:
  virtual ~SubscriptionFreezer() = default;

  void FreezeSubscriptions() {
    frozen_.store(true, std::memory_order_release);
  }
  bool subscriptions_frozen() const {
    return frozen_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> frozen_{false};
};

/// Typed output port.
template <typename T>
class Publisher : public SubscriptionFreezer {
 public:
  using Subscriber = std::function<void(const StreamElement<T>&)>;
  using ChunkSubscriber = std::function<void(const ChunkView<T>&)>;

  /// Registers a per-element consumer. Not thread-safe; must happen before
  /// Topology::Start() — a frozen publisher refuses the subscription.
  void Subscribe(Subscriber subscriber) {
    SubscribeWith(std::move(subscriber), nullptr);
  }

  /// Registers a consumer with an OnChunk fast path. `subscriber` still
  /// handles every punctuation and any upstream that publishes per-element;
  /// `on_chunk` takes over whole-chunk deliveries (the view is valid only
  /// for the duration of the call).
  void SubscribeWith(Subscriber subscriber, ChunkSubscriber on_chunk) {
    assert(!subscriptions_frozen() && "Subscribe after Topology::Start()");
    if (subscriptions_frozen()) {
      STREAMSI_ERROR("Subscribe after Start() refused: the subscriber list "
                     "is live on the publishing thread");
      return;
    }
    subscribers_.push_back(Entry{std::move(subscriber), std::move(on_chunk)});
  }

  void Publish(const StreamElement<T>& element) {
    for (auto& entry : subscribers_) entry.on_element(element);
  }

  /// Ships a whole chunk: one call per chunk-aware subscriber, automatic
  /// per-tuple fallback for the rest.
  void PublishChunk(const ChunkView<T>& view) {
    for (auto& entry : subscribers_) {
      if (entry.on_chunk) {
        entry.on_chunk(view);
        continue;
      }
      for (std::size_t i = 0; i < view.size(); ++i) {
        entry.on_element(StreamElement<T>(view[i], view.ts(i)));
      }
    }
  }

  std::size_t subscriber_count() const { return subscribers_.size(); }

  /// True when at least one subscriber registered an OnChunk fast path
  /// (producers may use this to skip building chunks nobody consumes).
  bool has_chunk_subscriber() const {
    for (const auto& entry : subscribers_) {
      if (entry.on_chunk) return true;
    }
    return false;
  }

 private:
  struct Entry {
    Subscriber on_element;
    ChunkSubscriber on_chunk;
  };
  std::vector<Entry> subscribers_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_OPERATOR_H_
