// Operator plumbing: push-based publish/subscribe, as in PipeFabric where a
// query is a Topology — "a graph where each node is an operator and the
// edges represent their subscribed streams" (§4.1).
//
// Threading model: each source pushes its elements through the downstream
// chain on the source's thread (synchronous calls). Subscriptions must be
// set up before Topology::Start().

#ifndef STREAMSI_STREAM_OPERATOR_H_
#define STREAMSI_STREAM_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "stream/element.h"

namespace streamsi {

/// Point-in-time diagnostics of one operator (queue-backed operators report
/// depth/backpressure; pure pass-through operators report zeros).
struct OperatorStats {
  std::uint64_t elements = 0;     ///< data elements processed/forwarded
  std::uint64_t queue_depth = 0;  ///< elements currently queued
  std::uint64_t stalls = 0;       ///< producer waits due to backpressure
  std::uint64_t dropped = 0;      ///< elements rejected (drop policy/close)
};

/// Base for all operators so a Topology can own them uniformly.
class OperatorBase {
 public:
  virtual ~OperatorBase() = default;
  /// Called by Topology::Start (sources/lanes spawn their threads here).
  /// Must be idempotent — lifecycle code may retry.
  virtual void Start() {}
  /// Cooperative stop signal. Must be idempotent.
  virtual void Stop() {}
  /// Blocks until the operator finished (sources: thread joined).
  virtual void Join() {}
  virtual std::string_view name() const = 0;
  /// Diagnostics snapshot; safe to call while the topology runs.
  virtual OperatorStats stats() const { return {}; }
};

/// Typed output port.
template <typename T>
class Publisher {
 public:
  using Subscriber = std::function<void(const StreamElement<T>&)>;

  /// Registers a downstream consumer. Not thread-safe; call before Start().
  void Subscribe(Subscriber subscriber) {
    subscribers_.push_back(std::move(subscriber));
  }

  void Publish(const StreamElement<T>& element) {
    for (auto& subscriber : subscribers_) subscriber(element);
  }

  std::size_t subscriber_count() const { return subscribers_.size(); }

 private:
  std::vector<Subscriber> subscribers_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_OPERATOR_H_
