// Basic stream operators: Map, Where, ForEach, Collect, Print.
// Punctuations flow through all of them unchanged.

#ifndef STREAMSI_STREAM_OPS_H_
#define STREAMSI_STREAM_OPS_H_

#include <condition_variable>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

/// Element-wise transformation In -> Out.
template <typename In, typename Out>
class Map : public OperatorBase, public Publisher<Out> {
 public:
  Map(Publisher<In>* input, std::function<Out(const In&)> fn)
      : fn_(std::move(fn)) {
    input->Subscribe([this](const StreamElement<In>& e) {
      if (e.is_data()) {
        this->Publish(StreamElement<Out>(fn_(e.data()), e.ts()));
      } else {
        this->Publish(e.template ForwardPunctuation<Out>());
      }
    });
  }

  std::string_view name() const override { return "Map"; }

 private:
  std::function<Out(const In&)> fn_;
};

/// Predicate filter.
template <typename T>
class Where : public OperatorBase, public Publisher<T> {
 public:
  Where(Publisher<T>* input, std::function<bool(const T&)> predicate)
      : predicate_(std::move(predicate)) {
    input->Subscribe([this](const StreamElement<T>& e) {
      if (!e.is_data() || predicate_(e.data())) this->Publish(e);
    });
  }

  std::string_view name() const override { return "Where"; }

 private:
  std::function<bool(const T&)> predicate_;
};

/// Terminal sink invoking a callback per data element (and optionally per
/// punctuation).
template <typename T>
class ForEach : public OperatorBase {
 public:
  ForEach(Publisher<T>* input, std::function<void(const T&)> fn,
          std::function<void(Punctuation)> punctuation_fn = nullptr)
      : fn_(std::move(fn)), punctuation_fn_(std::move(punctuation_fn)) {
    input->Subscribe([this](const StreamElement<T>& e) {
      if (e.is_data()) {
        fn_(e.data());
      } else if (punctuation_fn_) {
        punctuation_fn_(e.punctuation());
      }
    });
  }

  std::string_view name() const override { return "ForEach"; }

 private:
  std::function<void(const T&)> fn_;
  std::function<void(Punctuation)> punctuation_fn_;
};

/// Thread-safe collecting sink; WaitForEos() blocks until the stream ended.
template <typename T>
class Collect : public OperatorBase {
 public:
  explicit Collect(Publisher<T>* input) {
    input->Subscribe([this](const StreamElement<T>& e) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (e.is_data()) {
        elements_.push_back(e.data());
      } else if (e.punctuation() == Punctuation::kEndOfStream) {
        eos_ = true;
        cv_.notify_all();
      }
    });
  }

  void WaitForEos() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return eos_; });
  }

  std::vector<T> TakeElements() {
    std::unique_lock<std::mutex> lock(mutex_);
    return std::move(elements_);
  }

  std::vector<T> Elements() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return elements_;
  }

  std::size_t size() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return elements_.size();
  }

  std::string_view name() const override { return "Collect"; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> elements_;
  bool eos_ = false;
};

/// Debug sink: prints every element with a prefix.
template <typename T>
class Print : public OperatorBase {
 public:
  Print(Publisher<T>* input, std::string prefix = "",
        std::ostream* os = &std::cout)
      : prefix_(std::move(prefix)), os_(os) {
    input->Subscribe([this](const StreamElement<T>& e) {
      std::ostringstream line;
      if (e.is_data()) {
        line << prefix_ << e.data() << '\n';
      } else {
        line << prefix_ << '<' << PunctuationName(e.punctuation()) << ">\n";
      }
      std::unique_lock<std::mutex> lock(mutex_);
      (*os_) << line.str();
    });
  }

  std::string_view name() const override { return "Print"; }

 private:
  std::string prefix_;
  std::ostream* os_;
  std::mutex mutex_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_OPS_H_
