// Basic stream operators: Map, Where, ForEach, Collect, Print.
// Punctuations flow through all of them unchanged.
//
// Chunk fast paths: Map, Where, ForEach and Collect implement OnChunk —
// one virtual-free tight loop per chunk instead of one std::function
// dispatch per tuple. Where forwards an all-pass chunk as the original
// view (zero copy) and compacts survivors into a scratch chunk otherwise;
// Map transforms into a scratch chunk. Scratch chunks are owned by the
// operator and reused — safe because chunk delivery is single-threaded
// per operator (the same contract per-tuple stateful operators rely on).
//
// Vectorized kernels: Where and Map optionally carry a chunk-granular
// kernel (one std::function dispatch per CHUNK wrapping an inlined tight
// loop over the contiguous tuple array — auto-vectorizable, no per-tuple
// dispatch at all). A kernelized Where emits survivors as a SELECTION
// VECTOR over the original chunk, so a partial-pass chunk ships with zero
// tuple copies. Build them with MakeVectorizedWhere / MakeVectorizedMap,
// or filter on one field of a columnar-registered struct with
// ColumnarWhere. Kernels require dense input; selected input falls back
// to the scalar path and the kernel_chunks/fallback_chunks counters in
// OperatorStats make the split observable.

#ifndef STREAMSI_STREAM_OPS_H_
#define STREAMSI_STREAM_OPS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <type_traits>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

/// Element-wise transformation In -> Out.
template <typename In, typename Out>
class Map : public OperatorBase, public Publisher<Out> {
 public:
  /// Vectorized projection kernel: transforms `n` contiguous rows into
  /// `out` in one tight loop.
  using MapKernel =
      std::function<void(const In* data, std::size_t n, Out* out)>;

  Map(Publisher<In>* input, std::function<Out(const In&)> fn)
      : Map(input, std::move(fn), nullptr) {}

  Map(Publisher<In>* input, std::function<Out(const In&)> fn,
      MapKernel kernel)
      : fn_(std::move(fn)), kernel_(std::move(kernel)) {
    input->SubscribeWith(
        [this](const StreamElement<In>& e) {
          if (e.is_data()) {
            this->Publish(StreamElement<Out>(fn_(e.data()), e.ts()));
          } else {
            this->Publish(e.template ForwardPunctuation<Out>());
          }
        },
        [this](const ChunkView<In>& view) { OnChunk(view); });
  }

  std::string_view name() const override { return "Map"; }

  OperatorStats stats() const override {
    OperatorStats s;
    s.kernel_chunks = kernel_chunks_.load(std::memory_order_relaxed);
    s.fallback_chunks = fallback_chunks_.load(std::memory_order_relaxed);
    s.kernel_tuples_in = kernel_tuples_.load(std::memory_order_relaxed);
    s.kernel_tuples_out = s.kernel_tuples_in;  // projections are 1:1
    s.chunks = s.kernel_chunks + s.fallback_chunks;
    return s;
  }

 private:
  void OnChunk(const ChunkView<In>& view) {
    if (kernel_ && view.dense() && !view.empty()) {
      if (out_.size() < view.size()) out_.resize(view.size());
      kernel_(view.data(), view.size(), out_.data());
      kernel_chunks_.fetch_add(1, std::memory_order_relaxed);
      kernel_tuples_.fetch_add(view.size(), std::memory_order_relaxed);
      // The output shares the input's timestamp array — no ts copy either.
      this->PublishChunk(
          ChunkView<Out>(out_.data(), view.ts_data(), view.size()));
      return;
    }
    fallback_chunks_.fetch_add(1, std::memory_order_relaxed);
    if (!scratch_ || scratch_->capacity() < view.size()) {
      scratch_.emplace(view.size());
    }
    for (std::size_t i = 0; i < view.size(); ++i) {
      scratch_->Append(fn_(view[i]), view.ts(i));
    }
    this->PublishChunk(scratch_->view());
    scratch_->Clear();
  }

  std::function<Out(const In&)> fn_;
  MapKernel kernel_;
  std::vector<Out> out_;               ///< kernel output; delivering-thread only
  std::optional<Chunk<Out>> scratch_;  ///< delivering-thread only
  std::atomic<std::uint64_t> kernel_chunks_{0};
  std::atomic<std::uint64_t> fallback_chunks_{0};
  std::atomic<std::uint64_t> kernel_tuples_{0};
};

/// Builds a Map whose chunk path runs `fn` as one tight loop per chunk
/// (one dispatch per chunk instead of one per tuple). `fn` must be a
/// cheap, capture-light functor — it is copied into both the kernel and
/// the per-tuple fallback.
template <typename In, typename Out, typename Fn>
Map<In, Out>* MakeVectorizedMap(Publisher<In>* input, Fn fn) {
  static_assert(std::is_invocable_r_v<Out, Fn, const In&>,
                "Fn must map const In& -> Out");
  typename Map<In, Out>::MapKernel kernel =
      [fn](const In* data, std::size_t n, Out* out) {
        for (std::size_t i = 0; i < n; ++i) out[i] = fn(data[i]);
      };
  return new Map<In, Out>(
      input, [fn](const In& v) { return fn(v); }, std::move(kernel));
}

/// Predicate filter.
template <typename T>
class Where : public OperatorBase, public Publisher<T> {
 public:
  /// Vectorized filter kernel: evaluates the predicate over `n` contiguous
  /// rows, writes surviving row indices into `sel_out` and returns the
  /// survivor count.
  using FilterKernel = std::function<std::size_t(
      const T* data, std::size_t n, std::uint32_t* sel_out)>;

  Where(Publisher<T>* input, std::function<bool(const T&)> predicate)
      : Where(input, std::move(predicate), nullptr) {}

  Where(Publisher<T>* input, std::function<bool(const T&)> predicate,
        FilterKernel kernel)
      : predicate_(std::move(predicate)), kernel_(std::move(kernel)) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          if (!e.is_data() || predicate_(e.data())) this->Publish(e);
        },
        [this](const ChunkView<T>& view) { OnChunk(view); });
  }

  std::string_view name() const override { return "Where"; }

  OperatorStats stats() const override {
    OperatorStats s;
    s.kernel_chunks = kernel_chunks_.load(std::memory_order_relaxed);
    s.fallback_chunks = fallback_chunks_.load(std::memory_order_relaxed);
    s.kernel_tuples_in = kernel_in_.load(std::memory_order_relaxed);
    s.kernel_tuples_out = kernel_out_.load(std::memory_order_relaxed);
    s.chunks = s.kernel_chunks + s.fallback_chunks;
    return s;
  }

 private:
  void OnChunk(const ChunkView<T>& view) {
    if (kernel_ && view.dense() && !view.empty()) {
      // Kernel path: one dispatch for the whole chunk; the predicate runs
      // as a branch-light tight loop writing the selection vector.
      if (sel_.size() < view.size()) sel_.resize(view.size());
      const std::size_t out = kernel_(view.data(), view.size(), sel_.data());
      kernel_chunks_.fetch_add(1, std::memory_order_relaxed);
      kernel_in_.fetch_add(view.size(), std::memory_order_relaxed);
      kernel_out_.fetch_add(out, std::memory_order_relaxed);
      if (out == view.size()) {
        this->PublishChunk(view);  // all-pass: original view, zero copy
      } else if (out > 0) {
        // Partial pass: survivors ship as a selection over the original
        // data — still zero tuple copies.
        this->PublishChunk(
            ChunkView<T>(view.data(), view.ts_data(), sel_.data(), out));
      }
      return;
    }
    fallback_chunks_.fetch_add(1, std::memory_order_relaxed);
    // First rejection decides the path: until then nothing was copied, so
    // an all-pass chunk (the common case for selective-but-bursty
    // predicates) is forwarded as the original view, zero copy.
    std::size_t i = 0;
    for (; i < view.size(); ++i) {
      if (!predicate_(view[i])) break;
    }
    if (i == view.size()) {
      if (!view.empty()) this->PublishChunk(view);
      return;
    }
    if (!scratch_ || scratch_->capacity() < view.size()) {
      scratch_.emplace(view.size());
    }
    for (std::size_t j = 0; j < i; ++j) {
      scratch_->Append(view[j], view.ts(j));
    }
    for (std::size_t j = i + 1; j < view.size(); ++j) {
      if (predicate_(view[j])) scratch_->Append(view[j], view.ts(j));
    }
    if (!scratch_->empty()) this->PublishChunk(scratch_->view());
    scratch_->Clear();
  }

  std::function<bool(const T&)> predicate_;
  FilterKernel kernel_;
  std::vector<std::uint32_t> sel_;   ///< selection scratch; delivering-thread only
  std::optional<Chunk<T>> scratch_;  ///< delivering-thread only
  std::atomic<std::uint64_t> kernel_chunks_{0};
  std::atomic<std::uint64_t> fallback_chunks_{0};
  std::atomic<std::uint64_t> kernel_in_{0};
  std::atomic<std::uint64_t> kernel_out_{0};
};

/// Builds a Where whose chunk path runs `pred` as one auto-vectorizable
/// tight loop per chunk into the selection vector. `pred` must be a
/// cheap, capture-light functor — it is copied into both the kernel and
/// the per-tuple fallback.
template <typename T, typename Pred>
Where<T>* MakeVectorizedWhere(Publisher<T>* input, Pred pred) {
  static_assert(std::is_invocable_r_v<bool, Pred, const T&>,
                "Pred must map const T& -> bool");
  typename Where<T>::FilterKernel kernel =
      [pred](const T* data, std::size_t n, std::uint32_t* sel) {
        std::size_t out = 0;
        for (std::size_t i = 0; i < n; ++i) {
          sel[out] = static_cast<std::uint32_t>(i);
          out += pred(data[i]) ? 1 : 0;
        }
        return out;
      };
  return new Where<T>(
      input, [pred](const T& v) { return pred(v); }, std::move(kernel));
}

/// Filter over ONE FIELD of a columnar-registered type: each input chunk
/// is scattered into a pooled ColumnarChunk (per-field contiguous
/// arrays), the predicate runs over the field-I column as one tight loop
/// into the selection vector, and survivors are published as a selection
/// over the ORIGINAL row view — zero tuple copies on every path. Selected
/// input composes selections instead of falling back.
template <typename T, std::size_t I = 0>
class ColumnarWhere : public OperatorBase, public Publisher<T> {
  static_assert(ColumnarTraits<T>::kColumnar,
                "T has no columnar decomposition; register one with "
                "STREAMSI_COLUMNAR_FIELDS or use Where<T>");

 public:
  /// `pred` takes the field value (column I), not the whole row.
  template <typename Pred>
  ColumnarWhere(Publisher<T>* input, Pred pred)
      : pool_(ColumnarChunkPool<T>::Create()) {
    input->SubscribeWith(
        [this, pred](const StreamElement<T>& e) {
          if (!e.is_data() ||
              pred(ColumnarTraits<T>::template Get<I>(e.data()))) {
            this->Publish(e);
          }
        },
        [this, pred](const ChunkView<T>& view) { OnChunk(view, pred); });
  }

  std::string_view name() const override { return "ColumnarWhere"; }

  OperatorStats stats() const override {
    OperatorStats s;
    s.kernel_chunks = kernel_chunks_.load(std::memory_order_relaxed);
    s.kernel_tuples_in = kernel_in_.load(std::memory_order_relaxed);
    s.kernel_tuples_out = kernel_out_.load(std::memory_order_relaxed);
    s.chunks = s.kernel_chunks;
    return s;
  }

  const std::shared_ptr<ColumnarChunkPool<T>>& pool() const { return pool_; }

 private:
  template <typename Pred>
  void OnChunk(const ChunkView<T>& view, const Pred& pred) {
    if (view.empty()) return;
    ColumnarChunkRef<T> col = pool_->Acquire(view.size());
    col->ScatterFrom(view);  // compacts selected input
    const auto* field = col->template column<I>();
    std::uint32_t* sel = col->selection_data();
    const std::size_t n = col->size();
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sel[out] = static_cast<std::uint32_t>(i);
      out += pred(field[i]) ? 1 : 0;
    }
    col->SetSelection(out);
    kernel_chunks_.fetch_add(1, std::memory_order_relaxed);
    kernel_in_.fetch_add(n, std::memory_order_relaxed);
    kernel_out_.fetch_add(out, std::memory_order_relaxed);
    if (out == 0) return;
    if (out == n && view.dense()) {
      this->PublishChunk(view);  // all-pass: original view, zero copy
      return;
    }
    if (!view.dense()) {
      // Selected input: the kernel's indices are view-logical; compose
      // them with the input selection so they index the base arrays.
      const std::uint32_t* vsel = view.selection();
      for (std::size_t i = 0; i < out; ++i) sel[i] = vsel[sel[i]];
    }
    // `col` (and with it `sel`) lives until this call returns, which
    // outlives the synchronous downstream delivery.
    this->PublishChunk(ChunkView<T>(view.data(), view.ts_data(), sel, out));
  }

  std::shared_ptr<ColumnarChunkPool<T>> pool_;
  std::atomic<std::uint64_t> kernel_chunks_{0};
  std::atomic<std::uint64_t> kernel_in_{0};
  std::atomic<std::uint64_t> kernel_out_{0};
};

/// Terminal sink invoking a callback per data element (and optionally per
/// punctuation).
template <typename T>
class ForEach : public OperatorBase {
 public:
  ForEach(Publisher<T>* input, std::function<void(const T&)> fn,
          std::function<void(Punctuation)> punctuation_fn = nullptr)
      : fn_(std::move(fn)), punctuation_fn_(std::move(punctuation_fn)) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          if (e.is_data()) {
            fn_(e.data());
          } else if (punctuation_fn_) {
            punctuation_fn_(e.punctuation());
          }
        },
        [this](const ChunkView<T>& view) {
          for (std::size_t i = 0; i < view.size(); ++i) fn_(view[i]);
        });
  }

  std::string_view name() const override { return "ForEach"; }

 private:
  std::function<void(const T&)> fn_;
  std::function<void(Punctuation)> punctuation_fn_;
};

/// Thread-safe collecting sink; WaitForEos() blocks until the stream ended.
template <typename T>
class Collect : public OperatorBase {
 public:
  explicit Collect(Publisher<T>* input) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          std::unique_lock<std::mutex> lock(mutex_);
          if (e.is_data()) {
            elements_.push_back(e.data());
          } else if (e.punctuation() == Punctuation::kEndOfStream) {
            eos_ = true;
            cv_.notify_all();
          }
        },
        [this](const ChunkView<T>& view) {
          std::unique_lock<std::mutex> lock(mutex_);
          if (view.dense()) {
            elements_.insert(elements_.end(), view.data(),
                             view.data() + view.size());
          } else {
            for (std::size_t i = 0; i < view.size(); ++i) {
              elements_.push_back(view[i]);
            }
          }
        });
  }

  void WaitForEos() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return eos_; });
  }

  std::vector<T> TakeElements() {
    std::unique_lock<std::mutex> lock(mutex_);
    return std::move(elements_);
  }

  std::vector<T> Elements() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return elements_;
  }

  std::size_t size() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return elements_.size();
  }

  std::string_view name() const override { return "Collect"; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> elements_;
  bool eos_ = false;
};

/// Debug sink: prints every element with a prefix.
template <typename T>
class Print : public OperatorBase {
 public:
  Print(Publisher<T>* input, std::string prefix = "",
        std::ostream* os = &std::cout)
      : prefix_(std::move(prefix)), os_(os) {
    input->Subscribe([this](const StreamElement<T>& e) {
      std::ostringstream line;
      if (e.is_data()) {
        line << prefix_ << e.data() << '\n';
      } else {
        line << prefix_ << '<' << PunctuationName(e.punctuation()) << ">\n";
      }
      std::unique_lock<std::mutex> lock(mutex_);
      (*os_) << line.str();
    });
  }

  std::string_view name() const override { return "Print"; }

 private:
  std::string prefix_;
  std::ostream* os_;
  std::mutex mutex_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_OPS_H_
