// Basic stream operators: Map, Where, ForEach, Collect, Print.
// Punctuations flow through all of them unchanged.
//
// Chunk fast paths: Map, Where, ForEach and Collect implement OnChunk —
// one virtual-free tight loop per chunk instead of one std::function
// dispatch per tuple. Where forwards an all-pass chunk as the original
// view (zero copy) and compacts survivors into a scratch chunk otherwise;
// Map transforms into a scratch chunk. Scratch chunks are owned by the
// operator and reused — safe because chunk delivery is single-threaded
// per operator (the same contract per-tuple stateful operators rely on).

#ifndef STREAMSI_STREAM_OPS_H_
#define STREAMSI_STREAM_OPS_H_

#include <condition_variable>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

/// Element-wise transformation In -> Out.
template <typename In, typename Out>
class Map : public OperatorBase, public Publisher<Out> {
 public:
  Map(Publisher<In>* input, std::function<Out(const In&)> fn)
      : fn_(std::move(fn)) {
    input->SubscribeWith(
        [this](const StreamElement<In>& e) {
          if (e.is_data()) {
            this->Publish(StreamElement<Out>(fn_(e.data()), e.ts()));
          } else {
            this->Publish(e.template ForwardPunctuation<Out>());
          }
        },
        [this](const ChunkView<In>& view) {
          if (!scratch_ || scratch_->capacity() < view.size()) {
            scratch_.emplace(view.size());
          }
          for (std::size_t i = 0; i < view.size(); ++i) {
            scratch_->Append(fn_(view[i]), view.ts(i));
          }
          this->PublishChunk(scratch_->view());
          scratch_->Clear();
        });
  }

  std::string_view name() const override { return "Map"; }

 private:
  std::function<Out(const In&)> fn_;
  std::optional<Chunk<Out>> scratch_;  ///< delivering-thread only
};

/// Predicate filter.
template <typename T>
class Where : public OperatorBase, public Publisher<T> {
 public:
  Where(Publisher<T>* input, std::function<bool(const T&)> predicate)
      : predicate_(std::move(predicate)) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          if (!e.is_data() || predicate_(e.data())) this->Publish(e);
        },
        [this](const ChunkView<T>& view) { OnChunk(view); });
  }

  std::string_view name() const override { return "Where"; }

 private:
  void OnChunk(const ChunkView<T>& view) {
    // First rejection decides the path: until then nothing was copied, so
    // an all-pass chunk (the common case for selective-but-bursty
    // predicates) is forwarded as the original view, zero copy.
    std::size_t i = 0;
    for (; i < view.size(); ++i) {
      if (!predicate_(view[i])) break;
    }
    if (i == view.size()) {
      if (!view.empty()) this->PublishChunk(view);
      return;
    }
    if (!scratch_ || scratch_->capacity() < view.size()) {
      scratch_.emplace(view.size());
    }
    for (std::size_t j = 0; j < i; ++j) {
      scratch_->Append(view[j], view.ts(j));
    }
    for (std::size_t j = i + 1; j < view.size(); ++j) {
      if (predicate_(view[j])) scratch_->Append(view[j], view.ts(j));
    }
    if (!scratch_->empty()) this->PublishChunk(scratch_->view());
    scratch_->Clear();
  }

  std::function<bool(const T&)> predicate_;
  std::optional<Chunk<T>> scratch_;  ///< delivering-thread only
};

/// Terminal sink invoking a callback per data element (and optionally per
/// punctuation).
template <typename T>
class ForEach : public OperatorBase {
 public:
  ForEach(Publisher<T>* input, std::function<void(const T&)> fn,
          std::function<void(Punctuation)> punctuation_fn = nullptr)
      : fn_(std::move(fn)), punctuation_fn_(std::move(punctuation_fn)) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          if (e.is_data()) {
            fn_(e.data());
          } else if (punctuation_fn_) {
            punctuation_fn_(e.punctuation());
          }
        },
        [this](const ChunkView<T>& view) {
          for (std::size_t i = 0; i < view.size(); ++i) fn_(view[i]);
        });
  }

  std::string_view name() const override { return "ForEach"; }

 private:
  std::function<void(const T&)> fn_;
  std::function<void(Punctuation)> punctuation_fn_;
};

/// Thread-safe collecting sink; WaitForEos() blocks until the stream ended.
template <typename T>
class Collect : public OperatorBase {
 public:
  explicit Collect(Publisher<T>* input) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) {
          std::unique_lock<std::mutex> lock(mutex_);
          if (e.is_data()) {
            elements_.push_back(e.data());
          } else if (e.punctuation() == Punctuation::kEndOfStream) {
            eos_ = true;
            cv_.notify_all();
          }
        },
        [this](const ChunkView<T>& view) {
          std::unique_lock<std::mutex> lock(mutex_);
          elements_.insert(elements_.end(), view.data(),
                           view.data() + view.size());
        });
  }

  void WaitForEos() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return eos_; });
  }

  std::vector<T> TakeElements() {
    std::unique_lock<std::mutex> lock(mutex_);
    return std::move(elements_);
  }

  std::vector<T> Elements() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return elements_;
  }

  std::size_t size() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return elements_.size();
  }

  std::string_view name() const override { return "Collect"; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> elements_;
  bool eos_ = false;
};

/// Debug sink: prints every element with a prefix.
template <typename T>
class Print : public OperatorBase {
 public:
  Print(Publisher<T>* input, std::string prefix = "",
        std::ostream* os = &std::cout)
      : prefix_(std::move(prefix)), os_(os) {
    input->Subscribe([this](const StreamElement<T>& e) {
      std::ostringstream line;
      if (e.is_data()) {
        line << prefix_ << e.data() << '\n';
      } else {
        line << prefix_ << '<' << PunctuationName(e.punctuation()) << ">\n";
      }
      std::unique_lock<std::mutex> lock(mutex_);
      (*os_) << line.str();
    });
  }

  std::string_view name() const override { return "Print"; }

 private:
  std::string prefix_;
  std::ostream* os_;
  std::mutex mutex_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_OPS_H_
