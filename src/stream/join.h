// Join operators.
//
// StreamTableJoin: enriches each stream tuple with the matching row of a
// transactional table, read at the query's transactional visibility — this
// is the FROM(table)-inside-a-continuous-query pattern of the smart
// metering example (the Verify query joins measurements with the
// Specification table).
//
// IndexLookupJoin: enriches each stream tuple with EVERY base row matching
// a derived secondary key, probing a transactional secondary index and the
// base table in one snapshot (one-to-many where StreamTableJoin is
// one-to-one).
//
// SymmetricHashJoin: joins two streams on a key with bounded per-key
// buffers (count-based expiry), the classic DSMS symmetric hash join.

#ifndef STREAMSI_STREAM_JOIN_H_
#define STREAMSI_STREAM_JOIN_H_

#include <deque>
#include <unordered_map>

#include "core/index_key.h"
#include "core/transactional_table.h"
#include "stream/operator.h"

namespace streamsi {

/// Stream ⋈ table: each input tuple is matched against `table` in its own
/// short read transaction (read-committed ad-hoc lookup); unmatched tuples
/// are dropped (inner-join semantics).
template <typename T, typename K, typename V, typename Out>
class StreamTableJoin : public OperatorBase, public Publisher<Out> {
 public:
  using KeyExtractor = std::function<K(const T&)>;
  using Combiner = std::function<Out(const T&, const V&)>;

  StreamTableJoin(Publisher<T>* input, TransactionManager* manager,
                  TransactionalTable<K, V> table, KeyExtractor key,
                  Combiner combine,
                  IsolationLevel isolation = IsolationLevel::kReadCommitted)
      : manager_(manager),
        table_(table),
        key_(std::move(key)),
        combine_(std::move(combine)),
        isolation_(isolation) {
    input->Subscribe([this](const StreamElement<T>& e) { OnElement(e); });
  }

  std::string_view name() const override { return "StreamTableJoin"; }

  std::uint64_t matched() const {
    return matched_.load(std::memory_order_relaxed);
  }
  std::uint64_t unmatched() const {
    return unmatched_.load(std::memory_order_relaxed);
  }

 private:
  void OnElement(const StreamElement<T>& e) {
    if (!e.is_data()) {
      this->Publish(e.template ForwardPunctuation<Out>());
      return;
    }
    auto txn = manager_->Begin();
    if (!txn.ok()) return;
    (*txn)->txn().set_isolation(isolation_);
    auto row = table_.Get((*txn)->txn(), key_(e.data()));
    (void)(*txn)->Commit();
    if (!row.ok()) {
      unmatched_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    matched_.fetch_add(1, std::memory_order_relaxed);
    this->Publish(StreamElement<Out>(combine_(e.data(), *row), e.ts()));
  }

  TransactionManager* manager_;
  TransactionalTable<K, V> table_;
  KeyExtractor key_;
  Combiner combine_;
  IsolationLevel isolation_;
  std::atomic<std::uint64_t> matched_{0};
  std::atomic<std::uint64_t> unmatched_{0};
};

/// Stream ⋈ table through a secondary index: each input tuple derives a
/// secondary key, probes the index state for ALL matching primary keys
/// (composite range [S 0x00, S 0x01), see core/index_key.h) and point-reads
/// each base row — a one-to-many enrichment, where StreamTableJoin is
/// one-to-one by primary key. Index probe and base reads run in one
/// snapshot transaction, so §4.3's group cut (base and index live in the
/// same topology group) guarantees every index hit resolves to a base row
/// of the same snapshot — a dangling hit means a bug, and is counted.
template <typename T, typename Out>
class IndexLookupJoin : public OperatorBase, public Publisher<Out> {
 public:
  /// Derives the probe's secondary key from a tuple (must match the
  /// extractor the index was created with; no 0x00 bytes).
  using SecondaryKey = std::function<std::string(const T&)>;
  /// Combines a tuple with one matching base row (raw key/value bytes; the
  /// caller decodes with its table's serializers).
  using Combiner = std::function<Out(const T&, std::string_view primary_key,
                                     std::string_view row)>;

  IndexLookupJoin(Publisher<T>* input, TransactionManager* manager,
                  StateId base, StateId index, SecondaryKey secondary,
                  Combiner combine)
      : manager_(manager),
        base_(base),
        index_(index),
        secondary_(std::move(secondary)),
        combine_(std::move(combine)) {
    input->Subscribe([this](const StreamElement<T>& e) { OnElement(e); });
  }

  std::string_view name() const override { return "IndexLookupJoin"; }

  std::uint64_t matched() const {
    return matched_.load(std::memory_order_relaxed);
  }
  std::uint64_t unmatched() const {
    return unmatched_.load(std::memory_order_relaxed);
  }
  /// Index entries whose base row was missing in the same snapshot. Always
  /// zero unless the index invariant is broken.
  std::uint64_t dangling() const {
    return dangling_.load(std::memory_order_relaxed);
  }
  /// Tuples dropped because Begin or the index probe itself FAILED —
  /// transaction-slot exhaustion, a scan error — as opposed to probing
  /// cleanly and finding nothing (those count as unmatched). A nonzero
  /// value means the enriched stream is missing input tuples.
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void OnElement(const StreamElement<T>& e) {
    if (!e.is_data()) {
      this->Publish(e.template ForwardPunctuation<Out>());
      return;
    }
    auto txn = manager_->Begin();
    if (!txn.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Snapshot (not read-committed): the probe and the per-hit base reads
    // must observe ONE cut, or a concurrent commit could slip between them.
    (*txn)->txn().set_isolation(IsolationLevel::kSnapshot);
    IndexExactBounds(secondary_(e.data()), &lo_, &hi_);
    bool any = false;
    const Status status = (*txn)->ScanRange(
        index_, lo_, hi_,
        [&](std::string_view composite, std::string_view primary) {
          (void)primary;  // the value IS the primary key; so is the suffix
          std::string_view primary_key;
          if (!SplitIndexKey(composite, nullptr, &primary_key)) return true;
          if (manager_->Read((*txn)->txn(), base_, primary_key, &row_).ok()) {
            any = true;
            this->Publish(StreamElement<Out>(
                combine_(e.data(), primary_key, row_), e.ts()));
          } else {
            dangling_.fetch_add(1, std::memory_order_relaxed);
          }
          return true;
        });
    (void)(*txn)->Commit();
    if (!status.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
    } else if (!any) {
      unmatched_.fetch_add(1, std::memory_order_relaxed);
    } else {
      matched_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  TransactionManager* manager_;
  StateId base_;
  StateId index_;
  SecondaryKey secondary_;
  Combiner combine_;
  /// Reused probe-bounds / row buffers (elements arrive on one source
  /// thread; Subscribe runs callbacks serially per input).
  std::string lo_, hi_, row_;
  std::atomic<std::uint64_t> matched_{0};
  std::atomic<std::uint64_t> unmatched_{0};
  std::atomic<std::uint64_t> dangling_{0};
  std::atomic<std::uint64_t> errors_{0};
};

/// Symmetric hash join of two streams over a shared key type. Each side
/// buffers at most `window` tuples per key (older ones expire), so state
/// stays bounded on infinite streams.
///
/// Threading: both inputs may run on different source threads; the operator
/// serializes internally.
template <typename L, typename R, typename K, typename Out>
class SymmetricHashJoin : public OperatorBase, public Publisher<Out> {
 public:
  using LeftKey = std::function<K(const L&)>;
  using RightKey = std::function<K(const R&)>;
  using Combiner = std::function<Out(const L&, const R&)>;

  SymmetricHashJoin(Publisher<L>* left, Publisher<R>* right, LeftKey lkey,
                    RightKey rkey, Combiner combine, std::size_t window = 64)
      : lkey_(std::move(lkey)),
        rkey_(std::move(rkey)),
        combine_(std::move(combine)),
        window_(window == 0 ? 1 : window) {
    left->Subscribe([this](const StreamElement<L>& e) { OnLeft(e); });
    right->Subscribe([this](const StreamElement<R>& e) { OnRight(e); });
  }

  std::string_view name() const override { return "SymmetricHashJoin"; }

 private:
  void OnLeft(const StreamElement<L>& e) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!e.is_data()) {
      HandlePunctuation(e.punctuation(), e.ts(), /*left=*/true);
      return;
    }
    const K key = lkey_(e.data());
    // Probe the right buffer, then insert into the left buffer.
    auto it = right_buffer_.find(key);
    if (it != right_buffer_.end()) {
      for (const R& r : it->second) {
        this->Publish(StreamElement<Out>(combine_(e.data(), r), e.ts()));
      }
    }
    auto& bucket = left_buffer_[key];
    bucket.push_back(e.data());
    if (bucket.size() > window_) bucket.pop_front();
  }

  void OnRight(const StreamElement<R>& e) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!e.is_data()) {
      HandlePunctuation(e.punctuation(), e.ts(), /*left=*/false);
      return;
    }
    const K key = rkey_(e.data());
    auto it = left_buffer_.find(key);
    if (it != left_buffer_.end()) {
      for (const L& l : it->second) {
        this->Publish(StreamElement<Out>(combine_(l, e.data()), e.ts()));
      }
    }
    auto& bucket = right_buffer_[key];
    bucket.push_back(e.data());
    if (bucket.size() > window_) bucket.pop_front();
  }

  void HandlePunctuation(Punctuation p, Timestamp ts, bool left) {
    if (p == Punctuation::kEndOfStream) {
      // Emit EOS only once both inputs ended.
      if (left) left_eos_ = true;
      else right_eos_ = true;
      if (left_eos_ && right_eos_) {
        this->Publish(StreamElement<Out>(Punctuation::kEndOfStream, ts));
      }
      return;
    }
    // Transaction punctuations pass through from either side.
    this->Publish(StreamElement<Out>(p, ts));
  }

  LeftKey lkey_;
  RightKey rkey_;
  Combiner combine_;
  std::size_t window_;
  std::mutex mutex_;
  std::unordered_map<K, std::deque<L>> left_buffer_;
  std::unordered_map<K, std::deque<R>> right_buffer_;
  bool left_eos_ = false;
  bool right_eos_ = false;
};

/// Merge: forwards data elements of N same-typed inputs into one stream;
/// EOS is emitted once all inputs ended. Transaction punctuations are NOT
/// forwarded (merging independent transaction domains is undefined) — put
/// a Batcher downstream to re-impose boundaries.
template <typename T>
class Merge : public OperatorBase, public Publisher<T> {
 public:
  explicit Merge(std::vector<Publisher<T>*> inputs)
      : pending_eos_(inputs.size()) {
    for (Publisher<T>* input : inputs) {
      input->Subscribe([this](const StreamElement<T>& e) {
        std::lock_guard<std::mutex> guard(mutex_);
        if (e.is_data()) {
          this->Publish(e);
        } else if (e.punctuation() == Punctuation::kEndOfStream) {
          if (--pending_eos_ == 0) this->Publish(e);
        }
      });
    }
  }

  std::string_view name() const override { return "Merge"; }

 private:
  std::mutex mutex_;
  std::size_t pending_eos_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_JOIN_H_
