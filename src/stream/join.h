// Join operators.
//
// StreamTableJoin: enriches each stream tuple with the matching row of a
// transactional table, read at the query's transactional visibility — this
// is the FROM(table)-inside-a-continuous-query pattern of the smart
// metering example (the Verify query joins measurements with the
// Specification table).
//
// SymmetricHashJoin: joins two streams on a key with bounded per-key
// buffers (count-based expiry), the classic DSMS symmetric hash join.

#ifndef STREAMSI_STREAM_JOIN_H_
#define STREAMSI_STREAM_JOIN_H_

#include <deque>
#include <unordered_map>

#include "core/transactional_table.h"
#include "stream/operator.h"

namespace streamsi {

/// Stream ⋈ table: each input tuple is matched against `table` in its own
/// short read transaction (read-committed ad-hoc lookup); unmatched tuples
/// are dropped (inner-join semantics).
template <typename T, typename K, typename V, typename Out>
class StreamTableJoin : public OperatorBase, public Publisher<Out> {
 public:
  using KeyExtractor = std::function<K(const T&)>;
  using Combiner = std::function<Out(const T&, const V&)>;

  StreamTableJoin(Publisher<T>* input, TransactionManager* manager,
                  TransactionalTable<K, V> table, KeyExtractor key,
                  Combiner combine,
                  IsolationLevel isolation = IsolationLevel::kReadCommitted)
      : manager_(manager),
        table_(table),
        key_(std::move(key)),
        combine_(std::move(combine)),
        isolation_(isolation) {
    input->Subscribe([this](const StreamElement<T>& e) { OnElement(e); });
  }

  std::string_view name() const override { return "StreamTableJoin"; }

  std::uint64_t matched() const {
    return matched_.load(std::memory_order_relaxed);
  }
  std::uint64_t unmatched() const {
    return unmatched_.load(std::memory_order_relaxed);
  }

 private:
  void OnElement(const StreamElement<T>& e) {
    if (!e.is_data()) {
      this->Publish(e.template ForwardPunctuation<Out>());
      return;
    }
    auto txn = manager_->Begin();
    if (!txn.ok()) return;
    (*txn)->txn().set_isolation(isolation_);
    auto row = table_.Get((*txn)->txn(), key_(e.data()));
    (void)(*txn)->Commit();
    if (!row.ok()) {
      unmatched_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    matched_.fetch_add(1, std::memory_order_relaxed);
    this->Publish(StreamElement<Out>(combine_(e.data(), *row), e.ts()));
  }

  TransactionManager* manager_;
  TransactionalTable<K, V> table_;
  KeyExtractor key_;
  Combiner combine_;
  IsolationLevel isolation_;
  std::atomic<std::uint64_t> matched_{0};
  std::atomic<std::uint64_t> unmatched_{0};
};

/// Symmetric hash join of two streams over a shared key type. Each side
/// buffers at most `window` tuples per key (older ones expire), so state
/// stays bounded on infinite streams.
///
/// Threading: both inputs may run on different source threads; the operator
/// serializes internally.
template <typename L, typename R, typename K, typename Out>
class SymmetricHashJoin : public OperatorBase, public Publisher<Out> {
 public:
  using LeftKey = std::function<K(const L&)>;
  using RightKey = std::function<K(const R&)>;
  using Combiner = std::function<Out(const L&, const R&)>;

  SymmetricHashJoin(Publisher<L>* left, Publisher<R>* right, LeftKey lkey,
                    RightKey rkey, Combiner combine, std::size_t window = 64)
      : lkey_(std::move(lkey)),
        rkey_(std::move(rkey)),
        combine_(std::move(combine)),
        window_(window == 0 ? 1 : window) {
    left->Subscribe([this](const StreamElement<L>& e) { OnLeft(e); });
    right->Subscribe([this](const StreamElement<R>& e) { OnRight(e); });
  }

  std::string_view name() const override { return "SymmetricHashJoin"; }

 private:
  void OnLeft(const StreamElement<L>& e) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!e.is_data()) {
      HandlePunctuation(e.punctuation(), e.ts(), /*left=*/true);
      return;
    }
    const K key = lkey_(e.data());
    // Probe the right buffer, then insert into the left buffer.
    auto it = right_buffer_.find(key);
    if (it != right_buffer_.end()) {
      for (const R& r : it->second) {
        this->Publish(StreamElement<Out>(combine_(e.data(), r), e.ts()));
      }
    }
    auto& bucket = left_buffer_[key];
    bucket.push_back(e.data());
    if (bucket.size() > window_) bucket.pop_front();
  }

  void OnRight(const StreamElement<R>& e) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!e.is_data()) {
      HandlePunctuation(e.punctuation(), e.ts(), /*left=*/false);
      return;
    }
    const K key = rkey_(e.data());
    auto it = left_buffer_.find(key);
    if (it != left_buffer_.end()) {
      for (const L& l : it->second) {
        this->Publish(StreamElement<Out>(combine_(l, e.data()), e.ts()));
      }
    }
    auto& bucket = right_buffer_[key];
    bucket.push_back(e.data());
    if (bucket.size() > window_) bucket.pop_front();
  }

  void HandlePunctuation(Punctuation p, Timestamp ts, bool left) {
    if (p == Punctuation::kEndOfStream) {
      // Emit EOS only once both inputs ended.
      if (left) left_eos_ = true;
      else right_eos_ = true;
      if (left_eos_ && right_eos_) {
        this->Publish(StreamElement<Out>(Punctuation::kEndOfStream, ts));
      }
      return;
    }
    // Transaction punctuations pass through from either side.
    this->Publish(StreamElement<Out>(p, ts));
  }

  LeftKey lkey_;
  RightKey rkey_;
  Combiner combine_;
  std::size_t window_;
  std::mutex mutex_;
  std::unordered_map<K, std::deque<L>> left_buffer_;
  std::unordered_map<K, std::deque<R>> right_buffer_;
  bool left_eos_ = false;
  bool right_eos_ = false;
};

/// Merge: forwards data elements of N same-typed inputs into one stream;
/// EOS is emitted once all inputs ended. Transaction punctuations are NOT
/// forwarded (merging independent transaction domains is undefined) — put
/// a Batcher downstream to re-impose boundaries.
template <typename T>
class Merge : public OperatorBase, public Publisher<T> {
 public:
  explicit Merge(std::vector<Publisher<T>*> inputs)
      : pending_eos_(inputs.size()) {
    for (Publisher<T>* input : inputs) {
      input->Subscribe([this](const StreamElement<T>& e) {
        std::lock_guard<std::mutex> guard(mutex_);
        if (e.is_data()) {
          this->Publish(e);
        } else if (e.punctuation() == Punctuation::kEndOfStream) {
          if (--pending_eos_ == 0) this->Publish(e);
        }
      });
    }
  }

  std::string_view name() const override { return "Merge"; }

 private:
  std::mutex mutex_;
  std::size_t pending_eos_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_JOIN_H_
