// Window operators: tumbling/sliding count windows and a tumbling
// event-time window. Stateful operators like these are exactly the
// "windows" whose state the paper publishes as queryable tables (§3
// "Unified tables for queryable states") — combine them with ToTable to
// share their content.

#ifndef STREAMSI_STREAM_WINDOW_H_
#define STREAMSI_STREAM_WINDOW_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

/// One closed window of elements.
template <typename T>
struct WindowBatch {
  std::uint64_t window_id = 0;
  std::vector<T> elements;
};

/// Groups every `size` consecutive data elements into one batch.
/// A partial window is flushed at EOS.
template <typename T>
class TumblingCountWindow : public OperatorBase,
                            public Publisher<WindowBatch<T>> {
 public:
  TumblingCountWindow(Publisher<T>* input, std::size_t size) : size_(size) {
    input->Subscribe([this](const StreamElement<T>& e) { OnElement(e); });
  }

  std::string_view name() const override { return "TumblingCountWindow"; }

 private:
  void OnElement(const StreamElement<T>& e) {
    if (e.is_data()) {
      buffer_.push_back(e.data());
      if (buffer_.size() >= size_) Emit(e.ts());
      return;
    }
    if (e.punctuation() == Punctuation::kEndOfStream && !buffer_.empty()) {
      Emit(e.ts());
    }
    this->Publish(e.template ForwardPunctuation<WindowBatch<T>>());
  }

  void Emit(Timestamp ts) {
    WindowBatch<T> batch;
    batch.window_id = next_id_++;
    batch.elements = std::move(buffer_);
    buffer_.clear();
    this->Publish(StreamElement<WindowBatch<T>>(std::move(batch), ts));
  }

  std::size_t size_;
  std::vector<T> buffer_;
  std::uint64_t next_id_ = 0;
};

/// Overlapping count windows: a batch of the last `size` elements is
/// emitted every `slide` elements.
template <typename T>
class SlidingCountWindow : public OperatorBase,
                           public Publisher<WindowBatch<T>> {
 public:
  SlidingCountWindow(Publisher<T>* input, std::size_t size, std::size_t slide)
      : size_(size), slide_(slide == 0 ? 1 : slide) {
    input->Subscribe([this](const StreamElement<T>& e) { OnElement(e); });
  }

  std::string_view name() const override { return "SlidingCountWindow"; }

 private:
  void OnElement(const StreamElement<T>& e) {
    if (e.is_data()) {
      buffer_.push_back(e.data());
      if (buffer_.size() > size_) buffer_.pop_front();
      if (++since_last_emit_ >= slide_ && buffer_.size() == size_) {
        since_last_emit_ = 0;
        WindowBatch<T> batch;
        batch.window_id = next_id_++;
        batch.elements.assign(buffer_.begin(), buffer_.end());
        this->Publish(
            StreamElement<WindowBatch<T>>(std::move(batch), e.ts()));
      }
      return;
    }
    this->Publish(e.template ForwardPunctuation<WindowBatch<T>>());
  }

  std::size_t size_;
  std::size_t slide_;
  std::deque<T> buffer_;
  std::size_t since_last_emit_ = 0;
  std::uint64_t next_id_ = 0;
};

/// Event-time tumbling window: elements fall into [k*length, (k+1)*length)
/// buckets of the extracted timestamp; closing happens when an element of a
/// later bucket (or EOS) arrives. Requires non-decreasing event time.
template <typename T>
class TumblingTimeWindow : public OperatorBase,
                           public Publisher<WindowBatch<T>> {
 public:
  using TimeExtractor = std::function<std::uint64_t(const T&)>;

  TumblingTimeWindow(Publisher<T>* input, std::uint64_t length,
                     TimeExtractor extractor)
      : length_(length == 0 ? 1 : length), extractor_(std::move(extractor)) {
    input->Subscribe([this](const StreamElement<T>& e) { OnElement(e); });
  }

  std::string_view name() const override { return "TumblingTimeWindow"; }

 private:
  void OnElement(const StreamElement<T>& e) {
    if (e.is_data()) {
      const std::uint64_t bucket = extractor_(e.data()) / length_;
      if (has_bucket_ && bucket != current_bucket_ && !buffer_.empty()) {
        Emit(e.ts());
      }
      current_bucket_ = bucket;
      has_bucket_ = true;
      buffer_.push_back(e.data());
      return;
    }
    if (e.punctuation() == Punctuation::kEndOfStream && !buffer_.empty()) {
      Emit(e.ts());
    }
    this->Publish(e.template ForwardPunctuation<WindowBatch<T>>());
  }

  void Emit(Timestamp ts) {
    WindowBatch<T> batch;
    batch.window_id = current_bucket_;
    batch.elements = std::move(buffer_);
    buffer_.clear();
    this->Publish(StreamElement<WindowBatch<T>>(std::move(batch), ts));
  }

  std::uint64_t length_;
  TimeExtractor extractor_;
  std::vector<T> buffer_;
  std::uint64_t current_bucket_ = 0;
  bool has_bucket_ = false;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_WINDOW_H_
