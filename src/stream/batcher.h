// Batcher: injects data-centric transaction boundaries into a raw stream
// (§3): a BOT punctuation before the first element of each batch and a
// COMMIT punctuation after every `batch_size` data elements. With
// batch_size == 1 this is the "auto-commit" mode where "each stream element
// represents its own transaction"; an open batch is committed at EOS.
//
// Chunk fast path: an incoming chunk is sliced at batch boundaries — each
// slice is re-published as a (zero copy) sub-view framed by exactly the
// BOT/COMMIT punctuations the per-tuple path would emit, with identical
// timestamps (BOT carries the batch's first tuple ts, COMMIT its last), so
// the downstream boundary sequence is byte-identical either way.

#ifndef STREAMSI_STREAM_BATCHER_H_
#define STREAMSI_STREAM_BATCHER_H_

#include <algorithm>

#include "stream/operator.h"

namespace streamsi {

template <typename T>
class Batcher : public OperatorBase, public Publisher<T> {
 public:
  Batcher(Publisher<T>* input, std::size_t batch_size)
      : batch_size_(batch_size == 0 ? 1 : batch_size) {
    input->SubscribeWith(
        [this](const StreamElement<T>& e) { OnElement(e); },
        [this](const ChunkView<T>& view) { OnChunk(view); });
  }

  std::string_view name() const override { return "Batcher"; }

 private:
  void OnElement(const StreamElement<T>& e) {
    if (e.is_data()) {
      if (in_batch_ == 0) {
        this->Publish(StreamElement<T>(Punctuation::kBeginTxn, e.ts()));
      }
      this->Publish(e);
      if (++in_batch_ >= batch_size_) {
        this->Publish(StreamElement<T>(Punctuation::kCommitTxn, e.ts()));
        in_batch_ = 0;
      }
      return;
    }
    if (e.punctuation() == Punctuation::kEndOfStream && in_batch_ > 0) {
      this->Publish(StreamElement<T>(Punctuation::kCommitTxn, e.ts()));
      in_batch_ = 0;
    }
    this->Publish(e);
  }

  void OnChunk(const ChunkView<T>& view) {
    std::size_t offset = 0;
    while (offset < view.size()) {
      if (in_batch_ == 0) {
        this->Publish(
            StreamElement<T>(Punctuation::kBeginTxn, view.ts(offset)));
      }
      const std::size_t take =
          std::min(batch_size_ - in_batch_, view.size() - offset);
      this->PublishChunk(view.Slice(offset, take));
      in_batch_ += take;
      offset += take;
      if (in_batch_ >= batch_size_) {
        this->Publish(
            StreamElement<T>(Punctuation::kCommitTxn, view.ts(offset - 1)));
        in_batch_ = 0;
      }
    }
  }

  std::size_t batch_size_;
  std::size_t in_batch_ = 0;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_BATCHER_H_
