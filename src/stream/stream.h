// Umbrella header for the stream operator runtime.

#ifndef STREAMSI_STREAM_STREAM_H_
#define STREAMSI_STREAM_STREAM_H_

#include "stream/aggregate.h"
#include "stream/batcher.h"
#include "stream/chunk.h"
#include "stream/csv.h"
#include "stream/each_update.h"
#include "stream/element.h"
#include "stream/from_table.h"
#include "stream/join.h"
#include "stream/merge.h"
#include "stream/operator.h"
#include "stream/ops.h"
#include "stream/partition.h"
#include "stream/punctuation.h"
#include "stream/queue.h"
#include "stream/sources.h"
#include "stream/to_stream.h"
#include "stream/to_table.h"
#include "stream/topology.h"
#include "stream/txn_context.h"
#include "stream/window.h"

#endif  // STREAMSI_STREAM_STREAM_H_
