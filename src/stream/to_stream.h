// ToStream: the TO_STREAM linking operator (§3, Figure 2) — "produces a
// stream of tuples from a table. Whenever a certain condition on a table is
// fulfilled, TO_STREAM is executed and emits a new (set of) tuple(s)".
//
// Trigger policies (§3 "Transactional semantics"): the default kOnCommit
// emits the changes of each committed transaction (atomically visible
// changes only); the alternative per-modification policy is obtained by the
// ToTable pass-through. An optional condition filters the emitted changes.
//
// Threading: change events are published from the committing thread.

#ifndef STREAMSI_STREAM_TO_STREAM_H_
#define STREAMSI_STREAM_TO_STREAM_H_

#include <optional>

#include "common/serde.h"
#include "core/transaction_manager.h"
#include "stream/operator.h"

namespace streamsi {

/// One committed change of a table, as a stream tuple.
template <typename K, typename V>
struct ChangeEvent {
  K key{};
  /// nullopt = the key was deleted.
  std::optional<V> value;
  Timestamp commit_ts = 0;
};

template <typename K, typename V>
class ToStream : public OperatorBase, public Publisher<ChangeEvent<K, V>> {
 public:
  using Condition = std::function<bool(const ChangeEvent<K, V>&)>;

  /// @param condition  optional emit filter ("a certain condition on a
  ///                   table"); null emits every change.
  ToStream(TransactionManager* manager, StateId state,
           Condition condition = nullptr)
      : manager_(manager), condition_(std::move(condition)) {
    token_ = manager_->RegisterCommitListener(
        state, [this](const CommitInfo& info) { OnCommit(info); });
  }

  ~ToStream() override { Stop(); }

  void Stop() override {
    if (token_ != 0) {
      manager_->UnregisterCommitListener(token_);
      token_ = 0;
    }
  }

  std::string_view name() const override { return "ToStream"; }

 private:
  void OnCommit(const CommitInfo& info) {
    info.ForEachChange([&](std::string_view key, std::string_view value,
                           bool is_delete) {
      ChangeEvent<K, V> event;
      event.commit_ts = info.commit_ts;
      if (!Serializer<K>::Decode(key, &event.key)) return;
      if (!is_delete) {
        V decoded;
        if (!Serializer<V>::Decode(value, &decoded)) return;
        event.value = std::move(decoded);
      }
      if (condition_ && !condition_(event)) return;
      this->Publish(
          StreamElement<ChangeEvent<K, V>>(std::move(event), info.commit_ts));
    });
  }

  TransactionManager* manager_;
  Condition condition_;
  std::uint64_t token_ = 0;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_TO_STREAM_H_
