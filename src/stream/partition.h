// PartitionBy: partitioned operator parallelism (PipeFabric's PARTITION_BY,
// §4.1). Fans one input stream into N lanes; each lane is a dedicated
// worker thread driving its own downstream operator chain, fed through a
// bounded queue with a configurable backpressure policy.
//
// Routing: data elements go to lane `fn(tuple) % N`; punctuations (BOT,
// COMMIT, ROLLBACK, EOS) are *broadcast* to every lane so each lane's
// linking operators observe the full transaction-boundary sequence and a
// downstream MergePartitions can re-align them. Consequence: when lanes
// merge again, every lane must carry the same punctuation sequence —
// inject batch boundaries (Batcher) upstream of the partitioner, or give
// each lane boundary logic that provably emits identical sequences.
//
// Chunked (morsel) mode: with Options::chunk_capacity > 0 the router
// scatters data tuples into per-lane ChunkBuilders and ships each chunk as
// ONE queue item when it fills (flush reason: full) — the per-tuple queue
// round-trip and lane wakeup are amortized over the chunk. Punctuations
// flush EVERY builder first (flush reason: boundary) and are then
// broadcast as plain elements, so each lane still observes exactly the
// per-tuple boundary sequence: tuples routed before a boundary reach the
// lane before it, tuples routed after it reach the lane after it.
// Options::chunk_linger_micros bounds how long a partial chunk may sit in
// a builder on a quiet lane (flush reason: timeout).
//
// Threading: Route() runs on the upstream (source) thread and only touches
// the builders/queues; each lane's subscribers run exclusively on that
// lane's thread, so per-lane operator chains need no internal
// synchronization — the same single-threaded contract the non-partitioned
// push model gives.

#ifndef STREAMSI_STREAM_PARTITION_H_
#define STREAMSI_STREAM_PARTITION_H_

#include <atomic>
#include <cassert>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "stream/queue.h"

namespace streamsi {

template <typename T>
class PartitionBy : public OperatorBase {
 public:
  /// Maps a data tuple to a lane (taken modulo the lane count).
  using PartitionFn = std::function<std::size_t(const T&)>;

  struct Options {
    /// Queue depth per lane. NOTE: with chunking enabled this counts
    /// ITEMS (chunks / punctuations), so the buffered-tuple bound is
    /// queue_capacity * chunk_capacity.
    std::size_t queue_capacity = 1024;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    /// Tuples per chunk; 0 = per-tuple routing (the classic path).
    std::size_t chunk_capacity = 0;
    /// Max age of a partial chunk before it is flushed anyway (0 = only
    /// full/boundary flushes). Checked on the routing thread, so a silent
    /// source still needs a punctuation (or EOS) to flush the tail.
    std::uint64_t chunk_linger_micros = 0;
  };

  PartitionBy(Publisher<T>* input, std::size_t lanes, PartitionFn fn,
              Options options = {})
      : fn_(std::move(fn)), options_(options) {
    if (lanes == 0) lanes = 1;
    lanes_.reserve(lanes);
    if (options_.chunk_capacity > 0) pool_ = ChunkPool<T>::Create();
    for (std::size_t i = 0; i < lanes; ++i) {
      lanes_.push_back(std::make_unique<Lane>(options_));
      if (options_.chunk_capacity > 0) {
        lanes_.back()->builder = ChunkBuilder<T>(
            pool_, options_.chunk_capacity, options_.chunk_linger_micros,
            &lanes_.back()->build_stats);
      }
    }
    input->SubscribeWith(
        [this](const StreamElement<T>& e) { Route(e); },
        [this](const ChunkView<T>& view) { RouteChunk(view); });
  }

  ~PartitionBy() override {
    Stop();
    Join();
  }

  /// Output port of lane `i` — subscribe the lane's downstream chain here.
  /// All its callbacks run on lane `i`'s thread.
  Publisher<T>* lane(std::size_t i) {
    assert(i < lanes_.size());
    return lanes_[i].get();
  }
  std::size_t lane_count() const { return lanes_.size(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    for (auto& lane : lanes_) {
      // The lane publishers live behind PartitionBy, which the Topology
      // sees as one operator — freeze them here so a late Subscribe on a
      // lane is refused just like on a top-level publisher.
      lane->FreezeSubscriptions();
      lane->thread = std::thread([l = lane.get()] {
        DrainLaneQueueInto(l->queue, *l, l->delivered);
      });
    }
  }

  void Stop() override {
    for (auto& lane : lanes_) lane->queue.Close();
  }

  void Join() override {
    for (auto& lane : lanes_) {
      if (lane->thread.joinable()) lane->thread.join();
    }
  }

  std::string_view name() const override { return "PartitionBy"; }

  OperatorStats stats() const override {
    OperatorStats total;
    total.chunk_capacity = options_.chunk_capacity;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const OperatorStats s = lane_stats(i);
      total.elements += s.elements;
      total.queue_depth += s.queue_depth;
      total.stalls += s.stalls;
      total.dropped += s.dropped;
      total.chunks += s.chunks;
      total.chunk_tuples += s.chunk_tuples;
      total.flush_full += s.flush_full;
      total.flush_boundary += s.flush_boundary;
      total.flush_timeout += s.flush_timeout;
    }
    return total;
  }

  OperatorStats lane_stats(std::size_t i) const {
    assert(i < lanes_.size());
    const Lane& lane = *lanes_[i];
    const auto q = lane.queue.stats();
    OperatorStats s;
    s.elements = lane.delivered.load(std::memory_order_relaxed);
    s.queue_depth = lane.queue.size();
    s.stalls = q.stalls;
    s.dropped = q.dropped;
    s.chunk_capacity = options_.chunk_capacity;
    s.AddChunkCounters(lane.build_stats);
    return s;
  }

 private:
  struct Lane : public Publisher<T> {
    explicit Lane(const Options& options)
        : queue(options.queue_capacity, options.policy) {}
    BoundedQueue<LaneItem<T>> queue;
    ChunkBuilder<T> builder;       ///< routing-thread only
    ChunkBuildStats build_stats;
    std::thread thread;
    std::atomic<std::uint64_t> delivered{0};
  };

  void Route(const StreamElement<T>& e) {
    if (e.is_data()) {
      RouteData(e.data(), e.ts());
      return;
    }
    // Flush every partial chunk BEFORE broadcasting the boundary: tuples
    // routed ahead of the punctuation must reach their lane ahead of it
    // (§3 batch atomicity — a boundary never overtakes its batch's data).
    FlushAllBuilders(ChunkFlushReason::kBoundary);
    // Broadcast boundaries: every lane must observe BOT/COMMIT/ROLLBACK/EOS
    // so per-lane transactions stay batch-aligned and merge can realign.
    // PushWait: boundaries bypass the drop policy — losing one would desync
    // merge alignment, and losing EOS would hang the lane's join forever.
    for (auto& lane : lanes_) (void)lane->queue.PushWait(LaneItem<T>(e));
  }

  void RouteChunk(const ChunkView<T>& view) {
    for (std::size_t i = 0; i < view.size(); ++i) {
      RouteData(view[i], view.ts(i));
    }
  }

  void RouteData(const T& data, Timestamp ts) {
    const std::size_t index = fn_(data) % lanes_.size();
    Lane& lane = *lanes_[index];
    if (options_.chunk_capacity == 0) {
      (void)lane.queue.Push(LaneItem<T>(StreamElement<T>(data, ts)));
      return;
    }
    if (lane.builder.Append(data, ts)) {
      (void)lane.queue.Push(
          LaneItem<T>(lane.builder.Take(ChunkFlushReason::kFull)));
    }
    // Linger sweep: a lane the hash stopped favouring must not hold its
    // partial chunk forever. Amortized — every 64th routed tuple checks
    // every builder's deadline (no-op when linger is disabled).
    if (options_.chunk_linger_micros > 0 && (++routed_ & 63u) == 0) {
      for (auto& l : lanes_) {
        if (l->builder.LingerExpired()) {
          (void)l->queue.Push(
              LaneItem<T>(l->builder.Take(ChunkFlushReason::kTimeout)));
        }
      }
    }
  }

  void FlushAllBuilders(ChunkFlushReason reason) {
    if (options_.chunk_capacity == 0) return;
    for (auto& lane : lanes_) {
      if (lane->builder.empty()) continue;
      (void)lane->queue.Push(LaneItem<T>(lane->builder.Take(reason)));
    }
  }

  PartitionFn fn_;
  Options options_;
  std::shared_ptr<ChunkPool<T>> pool_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t routed_ = 0;  ///< routing-thread only (linger sweep pacing)
  bool started_ = false;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_PARTITION_H_
