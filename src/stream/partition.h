// PartitionBy: partitioned operator parallelism (PipeFabric's PARTITION_BY,
// §4.1). Fans one input stream into N lanes; each lane is a dedicated
// worker thread driving its own downstream operator chain, fed through a
// bounded queue with a configurable backpressure policy.
//
// Routing: data elements go to lane `fn(tuple) % N`; punctuations (BOT,
// COMMIT, ROLLBACK, EOS) are *broadcast* to every lane so each lane's
// linking operators observe the full transaction-boundary sequence and a
// downstream MergePartitions can re-align them. Consequence: when lanes
// merge again, every lane must carry the same punctuation sequence —
// inject batch boundaries (Batcher) upstream of the partitioner, or give
// each lane boundary logic that provably emits identical sequences.
//
// Threading: Route() runs on the upstream (source) thread and only touches
// the queues; each lane's subscribers run exclusively on that lane's
// thread, so per-lane operator chains need no internal synchronization —
// the same single-threaded contract the non-partitioned push model gives.

#ifndef STREAMSI_STREAM_PARTITION_H_
#define STREAMSI_STREAM_PARTITION_H_

#include <atomic>
#include <cassert>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "stream/queue.h"

namespace streamsi {

template <typename T>
class PartitionBy : public OperatorBase {
 public:
  /// Maps a data tuple to a lane (taken modulo the lane count).
  using PartitionFn = std::function<std::size_t(const T&)>;

  struct Options {
    std::size_t queue_capacity = 1024;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
  };

  PartitionBy(Publisher<T>* input, std::size_t lanes, PartitionFn fn,
              Options options = {})
      : fn_(std::move(fn)) {
    if (lanes == 0) lanes = 1;
    lanes_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      lanes_.push_back(std::make_unique<Lane>(options));
    }
    input->Subscribe([this](const StreamElement<T>& e) { Route(e); });
  }

  ~PartitionBy() override {
    Stop();
    Join();
  }

  /// Output port of lane `i` — subscribe the lane's downstream chain here.
  /// All its callbacks run on lane `i`'s thread.
  Publisher<T>* lane(std::size_t i) {
    assert(i < lanes_.size());
    return lanes_[i].get();
  }
  std::size_t lane_count() const { return lanes_.size(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    for (auto& lane : lanes_) {
      lane->thread = std::thread([l = lane.get()] {
        DrainQueueInto(l->queue, *l, l->delivered);
      });
    }
  }

  void Stop() override {
    for (auto& lane : lanes_) lane->queue.Close();
  }

  void Join() override {
    for (auto& lane : lanes_) {
      if (lane->thread.joinable()) lane->thread.join();
    }
  }

  std::string_view name() const override { return "PartitionBy"; }

  OperatorStats stats() const override {
    OperatorStats total;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const OperatorStats s = lane_stats(i);
      total.elements += s.elements;
      total.queue_depth += s.queue_depth;
      total.stalls += s.stalls;
      total.dropped += s.dropped;
    }
    return total;
  }

  OperatorStats lane_stats(std::size_t i) const {
    assert(i < lanes_.size());
    const Lane& lane = *lanes_[i];
    const auto q = lane.queue.stats();
    OperatorStats s;
    s.elements = lane.delivered.load(std::memory_order_relaxed);
    s.queue_depth = lane.queue.size();
    s.stalls = q.stalls;
    s.dropped = q.dropped;
    return s;
  }

 private:
  struct Lane : public Publisher<T> {
    explicit Lane(const Options& options)
        : queue(options.queue_capacity, options.policy) {}
    BoundedQueue<StreamElement<T>> queue;
    std::thread thread;
    std::atomic<std::uint64_t> delivered{0};
  };

  void Route(const StreamElement<T>& e) {
    if (e.is_data()) {
      const std::size_t lane = fn_(e.data()) % lanes_.size();
      (void)lanes_[lane]->queue.Push(e);
      return;
    }
    // Broadcast boundaries: every lane must observe BOT/COMMIT/ROLLBACK/EOS
    // so per-lane transactions stay batch-aligned and merge can realign.
    // PushWait: boundaries bypass the drop policy — losing one would desync
    // merge alignment, and losing EOS would hang the lane's join forever.
    for (auto& lane : lanes_) (void)lane->queue.PushWait(e);
  }

  PartitionFn fn_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  bool started_ = false;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_PARTITION_H_
