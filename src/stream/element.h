// StreamElement<T>: one element of a typed stream — either a data tuple
// (with an implicit ordering timestamp, §3 "tuples carry an implicit or
// explicit ordering") or a punctuation.

#ifndef STREAMSI_STREAM_ELEMENT_H_
#define STREAMSI_STREAM_ELEMENT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "stream/punctuation.h"

namespace streamsi {

template <typename T>
class StreamElement {
 public:
  /// Data element.
  explicit StreamElement(T data, Timestamp ts = 0)
      : data_(std::move(data)), punctuation_(Punctuation::kNone), ts_(ts) {}

  /// Punctuation element.
  explicit StreamElement(Punctuation punctuation, Timestamp ts = 0)
      : punctuation_(punctuation), ts_(ts) {
    assert(punctuation != Punctuation::kNone);
  }

  bool is_data() const { return punctuation_ == Punctuation::kNone; }
  bool is_punctuation() const { return !is_data(); }

  const T& data() const {
    assert(is_data());
    return *data_;
  }

  Punctuation punctuation() const { return punctuation_; }
  Timestamp ts() const { return ts_; }

  /// Rebuilds this punctuation for a different element type (operators
  /// forward punctuations unchanged through type-changing stages).
  template <typename U>
  StreamElement<U> ForwardPunctuation() const {
    assert(is_punctuation());
    return StreamElement<U>(punctuation_, ts_);
  }

 private:
  std::optional<T> data_;
  Punctuation punctuation_;
  Timestamp ts_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_ELEMENT_H_
