// Topology: owns the operator graph of one query and manages its
// lifecycle. "In PipeFabric a query is written by defining a so-called
// Topology. It can be seen as graph where each node is an operator and the
// edges represent their subscribed streams." (§4.1)

#ifndef STREAMSI_STREAM_TOPOLOGY_H_
#define STREAMSI_STREAM_TOPOLOGY_H_

#include <memory>
#include <utility>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

class Topology {
 public:
  Topology() = default;
  ~Topology() { StopAndJoin(); }

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Constructs an operator owned by this topology; returns a raw pointer
  /// for wiring (Subscribe / further stages).
  template <typename Op, typename... Args>
  Op* Add(Args&&... args) {
    auto op = std::make_unique<Op>(std::forward<Args>(args)...);
    Op* raw = op.get();
    operators_.push_back(std::move(op));
    return raw;
  }

  /// Adopts an operator allocated elsewhere.
  template <typename Op>
  Op* Adopt(Op* op) {
    operators_.push_back(std::unique_ptr<OperatorBase>(op));
    return op;
  }

  /// Starts all operators (sources spawn their threads).
  void Start() {
    for (auto& op : operators_) op->Start();
  }

  /// Blocks until all operators finished (sources drained + EOS pushed).
  void Join() {
    for (auto& op : operators_) op->Join();
  }

  /// Signals stop and joins.
  void StopAndJoin() {
    for (auto& op : operators_) op->Stop();
    Join();
  }

  std::size_t operator_count() const { return operators_.size(); }

 private:
  std::vector<std::unique_ptr<OperatorBase>> operators_;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_TOPOLOGY_H_
