// Topology: owns the operator graph of one query and manages its
// lifecycle. "In PipeFabric a query is written by defining a so-called
// Topology. It can be seen as graph where each node is an operator and the
// edges represent their subscribed streams." (§4.1)
//
// Lifecycle ordering: operators are registered source-to-sink (Subscribe
// requires the upstream to exist first), so Start() walks the registration
// order *backwards* — every downstream thread/queue is accepting before its
// upstream produces the first element — and Stop() walks it *forwards* —
// sources are silenced first, then the downstream drains. Both are
// idempotent.

#ifndef STREAMSI_STREAM_TOPOLOGY_H_
#define STREAMSI_STREAM_TOPOLOGY_H_

#include <memory>
#include <utility>
#include <vector>

#include "stream/operator.h"

namespace streamsi {

class Topology {
 public:
  Topology() = default;
  ~Topology() { StopAndJoin(); }

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Constructs an operator owned by this topology; returns a raw pointer
  /// for wiring (Subscribe / further stages).
  template <typename Op, typename... Args>
  Op* Add(Args&&... args) {
    auto op = std::make_unique<Op>(std::forward<Args>(args)...);
    Op* raw = op.get();
    operators_.push_back(std::move(op));
    return raw;
  }

  /// Adopts an operator allocated elsewhere.
  template <typename Op>
  Op* Adopt(Op* op) {
    operators_.push_back(std::unique_ptr<OperatorBase>(op));
    return op;
  }

  /// Starts all operators, sinks first (reverse registration order), so no
  /// source publishes into a lane/queue whose worker is not yet running.
  /// Before anything runs, every publisher is FROZEN: a Subscribe after
  /// Start() is refused (the subscriber lists go live on the publishing
  /// threads, where a late registration would be a data race).
  /// Idempotent.
  void Start() {
    if (started_) return;
    started_ = true;
    for (auto& op : operators_) {
      if (auto* publisher = dynamic_cast<SubscriptionFreezer*>(op.get())) {
        publisher->FreezeSubscriptions();
      }
    }
    for (auto it = operators_.rbegin(); it != operators_.rend(); ++it) {
      (*it)->Start();
    }
  }

  /// Signals stop, sources first (registration order), so the downstream
  /// only has to drain what is already in flight. Idempotent.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& op : operators_) op->Stop();
  }

  /// Blocks until all operators finished (sources drained + EOS pushed).
  void Join() {
    for (auto& op : operators_) op->Join();
  }

  /// Signals stop and joins. Idempotent.
  void StopAndJoin() {
    Stop();
    Join();
  }

  std::size_t operator_count() const { return operators_.size(); }

  /// Per-operator diagnostics (queue depth, elements, backpressure stalls),
  /// in registration (source-to-sink) order.
  struct OperatorReport {
    std::string_view name;
    OperatorStats stats;
  };
  std::vector<OperatorReport> StatsReport() const {
    std::vector<OperatorReport> report;
    report.reserve(operators_.size());
    for (const auto& op : operators_) {
      report.push_back({op->name(), op->stats()});
    }
    return report;
  }

 private:
  std::vector<std::unique_ptr<OperatorBase>> operators_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_TOPOLOGY_H_
