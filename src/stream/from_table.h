// FROM(table): the ad-hoc query operator (§3, Figure 2) — reads a snapshot
// of a table. FROM(stream) is plain subscription (attach to a Publisher at
// the point of attachment), so it needs no dedicated operator.

#ifndef STREAMSI_STREAM_FROM_TABLE_H_
#define STREAMSI_STREAM_FROM_TABLE_H_

#include <thread>
#include <utility>
#include <vector>

#include "core/transactional_table.h"
#include "stream/operator.h"

namespace streamsi {

/// Source that scans a consistent snapshot of a table inside one ad-hoc
/// transaction and emits every (key, value) pair, then EOS.
template <typename K, typename V>
class FromTable : public OperatorBase, public Publisher<std::pair<K, V>> {
 public:
  FromTable(TransactionManager* manager, TransactionalTable<K, V> table)
      : manager_(manager), table_(table) {}

  ~FromTable() override { Join(); }

  void Start() override {
    if (started_) return;  // idempotent, also after Join()
    started_ = true;
    thread_ = std::thread([this] { Run(); });
  }

  void Join() override {
    if (thread_.joinable()) thread_.join();
  }

  /// Synchronous variant: scans on the caller's thread.
  Status Run() {
    auto handle = manager_->Begin();
    if (!handle.ok()) return handle.status();
    Timestamp ts = 0;
    const Status status = table_.Scan(
        (*handle)->txn(), [&](const K& key, const V& value) {
          this->Publish(StreamElement<std::pair<K, V>>(
              std::make_pair(key, value), ts++));
          return true;
        });
    this->Publish(
        StreamElement<std::pair<K, V>>(Punctuation::kEndOfStream, ts));
    STREAMSI_RETURN_NOT_OK(status);
    return (*handle)->Commit();
  }

  std::string_view name() const override { return "FromTable"; }

 private:
  TransactionManager* manager_;
  TransactionalTable<K, V> table_;
  std::thread thread_;
  bool started_ = false;
};

/// Convenience: materializes a snapshot of `table` in one ad-hoc txn.
template <typename K, typename V>
Result<std::vector<std::pair<K, V>>> SnapshotOf(
    TransactionManager* manager, TransactionalTable<K, V> table) {
  auto handle = manager->Begin();
  if (!handle.ok()) return handle.status();
  std::vector<std::pair<K, V>> rows;
  STREAMSI_RETURN_NOT_OK(
      table.Scan((*handle)->txn(), [&](const K& key, const V& value) {
        rows.emplace_back(key, value);
        return true;
      }));
  STREAMSI_RETURN_NOT_OK((*handle)->Commit());
  return rows;
}

}  // namespace streamsi

#endif  // STREAMSI_STREAM_FROM_TABLE_H_
