// ToTable: the TO_TABLE linking operator (§3, Figure 2) — "inserts,
// deletes, or updates tuples from a stream in a table".
//
// Semantics per §3:
//   * upsert: whether a tuple is inserted or updated depends on the
//     presence of a table tuple with the same key;
//   * delete: "a delete occurs if the tuple is outdated (e.g., from a
//     window) or explicitly removed by a delete tuple" — modelled by an
//     optional delete predicate;
//   * transaction boundaries are data-centric: BOT/COMMIT/ROLLBACK
//     punctuations drive the shared StreamTxnContext;
//   * the operator forwards data elements downstream (pass-through), which
//     doubles as the kEachUpdate trigger policy for follow-up processing.
//
// Chunk fast path: a chunk is always a slice of ONE batch (Batcher slices
// chunks at boundaries; punctuations never ride inside a chunk), so the
// whole chunk targets one transaction. The fast path resolves the shared
// StreamTxnContext once per chunk and issues the batch writes in a tight
// loop; the FIRST failed (or unresolvable) write falls back to the
// per-tuple slow path from that tuple on, which re-runs the full per-tuple
// protocol — retry budget, poison-batch, error accounting — so failure
// semantics are byte-identical to per-tuple delivery.

#ifndef STREAMSI_STREAM_TO_TABLE_H_
#define STREAMSI_STREAM_TO_TABLE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/transactional_table.h"
#include "stream/operator.h"
#include "stream/txn_context.h"

namespace streamsi {

template <typename T, typename K, typename V>
class ToTable : public OperatorBase, public Publisher<T> {
 public:
  using KeyExtractor = std::function<K(const T&)>;
  using ValueExtractor = std::function<V(const T&)>;
  /// Optional: true => the element removes its key from the table.
  using DeletePredicate = std::function<bool(const T&)>;

  struct Options {
    /// Forward data elements downstream (each-update trigger policy).
    bool forward_elements = true;
    /// Begin a transaction implicitly when data arrives before any BOT.
    bool implicit_begin = true;
  };

  ToTable(Publisher<T>* input, TransactionalTable<K, V> table,
          std::shared_ptr<StreamTxnContext> ctx, KeyExtractor key,
          ValueExtractor value, DeletePredicate is_delete = nullptr,
          Options options = {})
      : table_(table),
        ctx_(std::move(ctx)),
        key_(std::move(key)),
        value_(std::move(value)),
        is_delete_(std::move(is_delete)),
        options_(options) {
    ctx_->AddParticipant(table_.id());
    input->SubscribeWith(
        [this](const StreamElement<T>& e) { OnElement(e); },
        [this](const ChunkView<T>& view) { OnChunk(view); });
  }

  std::string_view name() const override { return "ToTable"; }

  /// Number of write errors / failed commits observed (diagnostics).
  std::uint64_t error_count() const {
    return errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_count() const {
    return writes_.load(std::memory_order_relaxed);
  }

  OperatorStats stats() const override {
    OperatorStats s;
    s.elements = writes_.load(std::memory_order_relaxed);
    s.dropped = errors_.load(std::memory_order_relaxed);
    s.chunks = chunks_.load(std::memory_order_relaxed);
    s.chunk_tuples = chunk_tuples_.load(std::memory_order_relaxed);
    // Chunks fully absorbed by the tight write loop count as kernel hits;
    // chunks that spilled any tuple to the per-tuple protocol count as
    // fallbacks.
    s.kernel_chunks = kernel_chunks_.load(std::memory_order_relaxed);
    s.fallback_chunks = s.chunks - s.kernel_chunks;
    s.kernel_tuples_in = kernel_tuples_.load(std::memory_order_relaxed);
    s.kernel_tuples_out = s.kernel_tuples_in;
    return s;
  }

 private:
  /// Retry budget for ResourceExhausted writes (~5 ms worst case per
  /// tuple): long enough to ride out transaction-slot churn, short enough
  /// that a truly stuck lane fails the batch promptly.
  static constexpr int kExhaustedRetries = 10;
  static constexpr int kExhaustedRetryMicros = 500;

  void OnElement(const StreamElement<T>& e) {
    if (e.is_data()) {
      OnData(e.data());
      if (options_.forward_elements) this->Publish(e);
      return;
    }
    switch (e.punctuation()) {
      case Punctuation::kBeginTxn:
        Check(ctx_->Begin());
        break;
      case Punctuation::kCommitTxn:
        Check(ctx_->CommitState(table_.id()));
        break;
      case Punctuation::kRollbackTxn:
        Check(ctx_->AbortState(table_.id()));
        break;
      case Punctuation::kEndOfStream:
        // Flush an open transaction before the stream ends.
        if (ctx_->HasActive()) Check(ctx_->CommitState(table_.id()));
        break;
      case Punctuation::kNone:
        break;
    }
    this->Publish(e);  // punctuations always flow on
  }

  void OnChunk(const ChunkView<T>& view) {
    chunks_.fetch_add(1, std::memory_order_relaxed);
    chunk_tuples_.fetch_add(view.size(), std::memory_order_relaxed);
    std::size_t done = 0;
    // Fast path: one context resolution for the whole chunk, writes in a
    // tight loop. Deletes and data-outside-boundaries go per-tuple (rare;
    // their per-tuple accounting must stay exact).
    if (!is_delete_ && (options_.implicit_begin || ctx_->HasActive())) {
      if (auto txn = ctx_->Current(); txn.ok()) {
        Transaction* t = *txn;
        std::uint64_t ok_writes = 0;
        while (done < view.size()) {
          const T& data = view[done];
          if (!table_.Put(*t, key_(data), value_(data)).ok()) break;
          ++done;
          ++ok_writes;
        }
        writes_.fetch_add(ok_writes, std::memory_order_relaxed);
        if (done == view.size()) {
          kernel_chunks_.fetch_add(1, std::memory_order_relaxed);
          kernel_tuples_.fetch_add(ok_writes, std::memory_order_relaxed);
        }
      }
    }
    // Slow path (everything the fast path didn't finish): the full
    // per-tuple protocol, including retries and batch poisoning.
    for (; done < view.size(); ++done) OnData(view[done]);
    if (options_.forward_elements) this->PublishChunk(view);
  }

  void OnData(const T& data) {
    if (!options_.implicit_begin && !ctx_->HasActive()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return;  // data outside transaction boundaries is dropped
    }
    const K k = key_(data);
    Status status;
    for (int attempt = 0;; ++attempt) {
      auto txn = ctx_->Current();
      if (!txn.ok()) {
        status = txn.status();
      } else if (is_delete_ && is_delete_(data)) {
        status = table_.Delete(**txn, k);
      } else {
        status = table_.Put(**txn, k, value_(data));
      }
      // Unavailable is permanent for this batch (database degraded to
      // read-only, or an unpromoted replication follower): retrying cannot
      // succeed, so fail the tuple immediately and let the poison path
      // below end the batch instead of burning the retry budget hot.
      if (status.IsUnavailable()) break;
      // ResourceExhausted is transient pressure (full transaction table,
      // version array waiting out a lagging pin): retry briefly before
      // giving the tuple up.
      if (!status.IsResourceExhausted() || attempt >= kExhaustedRetries) {
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(kExhaustedRetryMicros));
    }
    if (status.ok()) {
      // Only successful writes count; failures go to error_count() — the
      // two counters partition the attempts instead of double-booking them.
      writes_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    errors_.fetch_add(1, std::memory_order_relaxed);
    // The tuple is lost for good: the batch must never commit the rest of
    // its tuples without it (a partially-applied batch would publish), so
    // poison it — already-applied writes roll back, later tuples drop until
    // the next batch boundary. An Aborted status means the transaction died
    // underneath us; Current() has poisoned that case itself.
    if (!status.IsAborted()) ctx_->PoisonBatch();
  }

  void Check(const Status& status) {
    if (!status.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
  }

  TransactionalTable<K, V> table_;
  std::shared_ptr<StreamTxnContext> ctx_;
  KeyExtractor key_;
  ValueExtractor value_;
  DeletePredicate is_delete_;
  Options options_;
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> chunk_tuples_{0};
  std::atomic<std::uint64_t> kernel_chunks_{0};
  std::atomic<std::uint64_t> kernel_tuples_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_TO_TABLE_H_
