// MergePartitions: N-way merge closing a PartitionBy fan-out back into one
// stream, with *punctuation alignment*: a transaction boundary (BOT,
// COMMIT, ROLLBACK) or EOS is forwarded downstream exactly once, and only
// after ALL lanes delivered it. Data elements flow through immediately
// (interleaved across lanes) — unless their lane has an unaligned boundary
// pending, in which case they are held back so downstream never sees a
// tuple of batch k+1 before batch k's COMMIT. This keeps transaction
// boundaries batch-atomic across the parallel lanes (§3).
//
// Chunked lanes change nothing about alignment: punctuations still arrive
// per-element (a chunk never contains a boundary), so the alignment rule
// is untouched. A data CHUNK from a lane with no pending boundary is
// forwarded as one PublishChunk call (zero copy — the borrowed view is
// re-published inside the delivering call); a chunk that must wait behind
// an unaligned boundary is copied into a merge-owned pooled chunk, because
// the upstream view dies when the delivering call returns.
//
// Requirement: every connected lane must deliver the same punctuation
// sequence (PartitionBy broadcasts boundaries, so this holds whenever the
// boundaries are injected upstream of the partitioner — or by per-lane
// logic that provably emits identical sequences).
//
// Threading: OnElement/OnChunk run on the delivering lane's thread; a
// mutex serializes delivery, so downstream of the merge is single-threaded
// again (the callbacks run under the merge lock, on whichever lane thread
// completed the alignment).
//
// Hold-back memory: the per-lane hold queues are unbounded deques, but
// their depth is bounded by the upstream partitioner under kBlock — a fast
// lane only buffers elements routed after an unaligned boundary, and the
// source stalls on the lagging lane's bounded queue (boundaries are
// broadcast into every lane) before it can route unboundedly more. Watch
// stats().queue_depth when tuning lane queue capacities.

#ifndef STREAMSI_STREAM_MERGE_H_
#define STREAMSI_STREAM_MERGE_H_

#include <cassert>
#include <deque>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "stream/operator.h"
#include "stream/partition.h"

namespace streamsi {

template <typename T>
class MergePartitions : public OperatorBase, public Publisher<T> {
 public:
  /// Declares the number of input ports; connect each with ConnectInput.
  explicit MergePartitions(std::size_t inputs)
      : held_(inputs == 0 ? 1 : inputs), pool_(ChunkPool<T>::Create()) {}

  /// Convenience: merge all lanes of a PartitionBy directly (use only when
  /// no per-lane operators sit between the partitioner and the merge).
  explicit MergePartitions(PartitionBy<T>* partition)
      : MergePartitions(partition->lane_count()) {
    for (std::size_t i = 0; i < partition->lane_count(); ++i) {
      ConnectInput(i, partition->lane(i));
    }
  }

  /// Wires input port `port` (one per lane, before Start()).
  void ConnectInput(std::size_t port, Publisher<T>* input) {
    assert(port < held_.size());
    input->SubscribeWith(
        [this, port](const StreamElement<T>& e) { OnElement(port, e); },
        [this, port](const ChunkView<T>& view) { OnChunk(port, view); });
  }

  std::size_t input_count() const { return held_.size(); }

  std::string_view name() const override { return "MergePartitions"; }

  OperatorStats stats() const override {
    std::lock_guard<std::mutex> guard(mutex_);
    OperatorStats s;
    s.elements = forwarded_;
    s.chunks = chunks_forwarded_;
    s.chunk_tuples = chunk_tuples_forwarded_;
    // Misaligned boundaries are forwarded best-effort, not rejected, so
    // they are surfaced as their own counter rather than stats().dropped.
    s.misaligned = misaligned_;
    for (const auto& held : held_) {
      for (const auto& item : held) {
        s.queue_depth += item.is_chunk() ? item.chunk->size() : 1;
      }
    }
    return s;
  }

  /// Number of boundary punctuations forwarded without full alignment — a
  /// wiring bug (lanes delivered different punctuation sequences); always
  /// zero for correctly built topologies. Also reported as
  /// stats().misaligned.
  std::uint64_t misaligned_count() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return misaligned_;
  }

 private:
  void OnElement(std::size_t port, const StreamElement<T>& e) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto& held = held_[port];
    if (e.is_data()) {
      if (held.empty()) {
        // No unaligned boundary pending on this lane: pass through.
        ++forwarded_;
        this->Publish(e);
      } else {
        // Batch k+1 data must wait behind the lane's pending batch-k
        // boundary, or downstream would see a torn batch.
        held.push_back(LaneItem<T>(e));
      }
      return;
    }
    held.push_back(LaneItem<T>(e));
    FlushAlignedLocked();
  }

  void OnChunk(std::size_t port, const ChunkView<T>& view) {
    if (view.empty()) return;
    std::lock_guard<std::mutex> guard(mutex_);
    auto& held = held_[port];
    if (held.empty()) {
      // Zero copy: the chunk crosses the merge inside the delivering call.
      forwarded_ += view.size();
      ++chunks_forwarded_;
      chunk_tuples_forwarded_ += view.size();
      this->PublishChunk(view);
      return;
    }
    // The view dies with the delivering call; copy to hold it back.
    ChunkRef<T> copy = pool_->Acquire(view.size());
    copy->AppendView(view);
    held.push_back(LaneItem<T>(std::move(copy)));
  }

  // Invariant: a non-empty hold queue starts with a punctuation (data is
  // only held while a boundary is pending, and released right after it).
  void FlushAlignedLocked() {
    for (;;) {
      Timestamp ts = 0;
      for (const auto& held : held_) {
        if (held.empty()) return;  // some lane hasn't delivered it yet
        if (ts < held.front().element->ts()) ts = held.front().element->ts();
      }
      Punctuation punctuation = held_[0].front().element->punctuation();
      bool aligned = true;
      for (const auto& held : held_) {
        if (held.front().element->punctuation() != punctuation) {
          aligned = false;
        }
      }
      if (!aligned) {
        // Wiring bug: the lanes delivered different punctuation sequences
        // (boundaries must be injected upstream of PartitionBy). Fail loud
        // at runtime — release builds included — and recover best-effort:
        // forward the first non-EOS front so EOS (terminal on every lane)
        // stays last and the merge still drains instead of hanging.
        punctuation = Punctuation::kEndOfStream;
        for (const auto& held : held_) {
          if (held.front().element->punctuation() !=
              Punctuation::kEndOfStream) {
            punctuation = held.front().element->punctuation();
            break;
          }
        }
        if (misaligned_ == 0) {
          STREAMSI_ERROR(
              "MergePartitions: lanes delivered different punctuation "
              "sequences (batch boundaries must be injected upstream of "
              "PartitionBy); forwarding best-effort — batch atomicity is "
              "no longer guaranteed");
        }
        ++misaligned_;
      }
      for (auto& held : held_) {
        if (held.front().element->punctuation() == punctuation) {
          held.pop_front();
        }
      }
      this->Publish(StreamElement<T>(punctuation, ts));
      // Release data that queued behind the now-forwarded boundary, up to
      // the lane's next boundary (restoring the invariant).
      for (auto& held : held_) {
        while (!held.empty() && IsData(held.front())) {
          LaneItem<T>& item = held.front();
          if (item.is_chunk()) {
            const std::size_t n = item.chunk->size();
            forwarded_ += n;
            ++chunks_forwarded_;
            chunk_tuples_forwarded_ += n;
            this->PublishChunk(item.chunk->view());
          } else {
            ++forwarded_;
            this->Publish(*item.element);
          }
          held.pop_front();
        }
      }
      if (punctuation == Punctuation::kEndOfStream) return;
    }
  }

  static bool IsData(const LaneItem<T>& item) {
    return item.is_chunk() || item.element->is_data();
  }

  mutable std::mutex mutex_;
  std::vector<std::deque<LaneItem<T>>> held_;
  std::shared_ptr<ChunkPool<T>> pool_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t chunks_forwarded_ = 0;
  std::uint64_t chunk_tuples_forwarded_ = 0;
  std::uint64_t misaligned_ = 0;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_MERGE_H_
