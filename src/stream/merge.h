// MergePartitions: N-way merge closing a PartitionBy fan-out back into one
// stream, with *punctuation alignment*: a transaction boundary (BOT,
// COMMIT, ROLLBACK) or EOS is forwarded downstream exactly once, and only
// after ALL lanes delivered it. Data elements flow through immediately
// (interleaved across lanes) — unless their lane has an unaligned boundary
// pending, in which case they are held back so downstream never sees a
// tuple of batch k+1 before batch k's COMMIT. This keeps transaction
// boundaries batch-atomic across the parallel lanes (§3).
//
// Requirement: every connected lane must deliver the same punctuation
// sequence (PartitionBy broadcasts boundaries, so this holds whenever the
// boundaries are injected upstream of the partitioner — or by per-lane
// logic that provably emits identical sequences).
//
// Threading: OnElement runs on the delivering lane's thread; a mutex
// serializes delivery, so downstream of the merge is single-threaded again
// (the callbacks run under the merge lock, on whichever lane thread
// completed the alignment).
//
// Hold-back memory: the per-lane hold queues are unbounded deques, but
// their depth is bounded by the upstream partitioner under kBlock — a fast
// lane only buffers elements routed after an unaligned boundary, and the
// source stalls on the lagging lane's bounded queue (boundaries are
// broadcast into every lane) before it can route unboundedly more. Watch
// stats().queue_depth when tuning lane queue capacities.

#ifndef STREAMSI_STREAM_MERGE_H_
#define STREAMSI_STREAM_MERGE_H_

#include <cassert>
#include <deque>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "stream/operator.h"
#include "stream/partition.h"

namespace streamsi {

template <typename T>
class MergePartitions : public OperatorBase, public Publisher<T> {
 public:
  /// Declares the number of input ports; connect each with ConnectInput.
  explicit MergePartitions(std::size_t inputs)
      : held_(inputs == 0 ? 1 : inputs) {}

  /// Convenience: merge all lanes of a PartitionBy directly (use only when
  /// no per-lane operators sit between the partitioner and the merge).
  explicit MergePartitions(PartitionBy<T>* partition)
      : MergePartitions(partition->lane_count()) {
    for (std::size_t i = 0; i < partition->lane_count(); ++i) {
      ConnectInput(i, partition->lane(i));
    }
  }

  /// Wires input port `port` (one per lane, before Start()).
  void ConnectInput(std::size_t port, Publisher<T>* input) {
    assert(port < held_.size());
    input->Subscribe(
        [this, port](const StreamElement<T>& e) { OnElement(port, e); });
  }

  std::size_t input_count() const { return held_.size(); }

  std::string_view name() const override { return "MergePartitions"; }

  OperatorStats stats() const override {
    std::lock_guard<std::mutex> guard(mutex_);
    OperatorStats s;
    s.elements = forwarded_;
    for (const auto& held : held_) s.queue_depth += held.size();
    return s;  // misalignment is not data loss; see misaligned_count()
  }

  /// Number of boundary punctuations forwarded without full alignment — a
  /// wiring bug (lanes delivered different punctuation sequences); always
  /// zero for correctly built topologies. Not surfaced as stats().dropped:
  /// misaligned boundaries are forwarded best-effort, not rejected.
  std::uint64_t misaligned_count() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return misaligned_;
  }

 private:
  void OnElement(std::size_t port, const StreamElement<T>& e) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto& held = held_[port];
    if (e.is_data()) {
      if (held.empty()) {
        // No unaligned boundary pending on this lane: pass through.
        ++forwarded_;
        this->Publish(e);
      } else {
        // Batch k+1 data must wait behind the lane's pending batch-k
        // boundary, or downstream would see a torn batch.
        held.push_back(e);
      }
      return;
    }
    held.push_back(e);
    FlushAlignedLocked();
  }

  // Invariant: a non-empty hold queue starts with a punctuation (data is
  // only held while a boundary is pending, and released right after it).
  void FlushAlignedLocked() {
    for (;;) {
      Timestamp ts = 0;
      for (const auto& held : held_) {
        if (held.empty()) return;  // some lane hasn't delivered it yet
        if (ts < held.front().ts()) ts = held.front().ts();
      }
      Punctuation punctuation = held_[0].front().punctuation();
      bool aligned = true;
      for (const auto& held : held_) {
        if (held.front().punctuation() != punctuation) aligned = false;
      }
      if (!aligned) {
        // Wiring bug: the lanes delivered different punctuation sequences
        // (boundaries must be injected upstream of PartitionBy). Fail loud
        // at runtime — release builds included — and recover best-effort:
        // forward the first non-EOS front so EOS (terminal on every lane)
        // stays last and the merge still drains instead of hanging.
        punctuation = Punctuation::kEndOfStream;
        for (const auto& held : held_) {
          if (held.front().punctuation() != Punctuation::kEndOfStream) {
            punctuation = held.front().punctuation();
            break;
          }
        }
        if (misaligned_ == 0) {
          STREAMSI_ERROR(
              "MergePartitions: lanes delivered different punctuation "
              "sequences (batch boundaries must be injected upstream of "
              "PartitionBy); forwarding best-effort — batch atomicity is "
              "no longer guaranteed");
        }
        ++misaligned_;
      }
      for (auto& held : held_) {
        if (held.front().punctuation() == punctuation) held.pop_front();
      }
      this->Publish(StreamElement<T>(punctuation, ts));
      // Release data that queued behind the now-forwarded boundary, up to
      // the lane's next boundary (restoring the invariant).
      for (auto& held : held_) {
        while (!held.empty() && held.front().is_data()) {
          ++forwarded_;
          this->Publish(held.front());
          held.pop_front();
        }
      }
      if (punctuation == Punctuation::kEndOfStream) return;
    }
  }

  mutable std::mutex mutex_;
  std::vector<std::deque<StreamElement<T>>> held_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t misaligned_ = 0;
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_MERGE_H_
