// Chunked (morsel) stream execution: fixed-size tuple carriers that move
// through the topology as one unit, so the per-tuple costs of the push
// model (§4.1) — a std::function dispatch, a queue push/pop, a routing
// hash — are paid once per chunk instead of once per tuple.
//
// The §3 punctuation contract is untouched: punctuations NEVER travel
// inside a chunk. A punctuation flushes every in-flight builder first
// (flush reason: boundary) and is then published as a plain
// StreamElement, so BOT/COMMIT framing, merge alignment and per-lane
// transaction batches are byte-identical to the per-tuple engine.
//
// Ownership model (three roles, zero steady-state allocation):
//   * Chunk<T>      — the storage: parallel tuple/timestamp arrays with a
//                     fixed capacity, reserved once at construction.
//   * ChunkView<T>  — a borrowed span handed to OnChunk subscribers. Valid
//                     ONLY for the duration of the call; an operator that
//                     needs the data later (e.g. MergePartitions holding
//                     post-boundary tuples back) must copy it into a chunk
//                     it owns.
//   * ChunkRef<T>   — unique ownership of a pooled chunk; returns the
//                     storage to its ChunkPool on destruction, cleared and
//                     ready for reuse. Queues hand off ChunkRefs, so a lane
//                     transports a pointer per chunk, not tuples.
//
// ChunkBuilder<T> accumulates routed tuples and reports WHY each chunk was
// flushed (full / boundary / timeout) — the flush-reason counters feed
// OperatorStats and make fill-ratio regressions observable.

#ifndef STREAMSI_STREAM_CHUNK_H_
#define STREAMSI_STREAM_CHUNK_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/latch.h"

namespace streamsi {

template <typename T>
class Chunk;

/// Borrowed span over a chunk's tuples + timestamps. Trivially copyable;
/// valid only while the underlying storage is (for OnChunk subscribers:
/// only for the duration of the call).
///
/// A view is either DENSE (rows [0, size) of the base arrays, in order) or
/// carries a SELECTION VECTOR: `size()` is then the number of selected
/// rows and element i resolves to base row `selection()[i]`. Selection
/// views are how a vectorized filter ships survivors without copying a
/// byte of tuple data — the kernel writes surviving row indices into an
/// operator-owned selection array and the view indirects through it.
/// `data()`/`ts_data()` expose the UNSELECTED base arrays; kernels must
/// check `dense()` before treating them as the logical sequence.
template <typename T>
class ChunkView {
 public:
  ChunkView() = default;
  ChunkView(const T* data, const Timestamp* ts, std::size_t size)
      : data_(data), ts_(ts), size_(size) {}
  /// Selected view: `sel` holds `size` base-row indices (strictly
  /// increasing for filter output, but any order is legal).
  ChunkView(const T* data, const Timestamp* ts, const std::uint32_t* sel,
            std::size_t size)
      : data_(data), ts_(ts), sel_(sel), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when the view covers base rows [0, size) directly — the layout
  /// kernels and bulk copies require.
  bool dense() const { return sel_ == nullptr; }
  /// Selection array (size() entries), or nullptr when dense.
  const std::uint32_t* selection() const { return sel_; }

  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[sel_ ? sel_[i] : i];
  }
  Timestamp ts(std::size_t i) const {
    assert(i < size_);
    return ts_[sel_ ? sel_[i] : i];
  }

  const T* data() const { return data_; }
  const Timestamp* ts_data() const { return ts_; }

  /// Sub-span [offset, offset + count) — Batcher slices a chunk at batch
  /// boundaries without copying. Slicing a selected view slices the
  /// selection, not the base arrays.
  ChunkView Slice(std::size_t offset, std::size_t count) const {
    assert(offset + count <= size_);
    if (sel_ != nullptr) {
      return ChunkView(data_, ts_, sel_ + offset, count);
    }
    return ChunkView(data_ + offset, ts_ + offset, count);
  }

 private:
  const T* data_ = nullptr;
  const Timestamp* ts_ = nullptr;
  const std::uint32_t* sel_ = nullptr;
  std::size_t size_ = 0;
};

/// Fixed-capacity tuple carrier: parallel data/timestamp arrays, reserved
/// once. Append never reallocates (capacity is a hard bound), so a reused
/// chunk is allocation-free at steady state.
template <typename T>
class Chunk {
 public:
  explicit Chunk(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
    data_.reserve(capacity);
    ts_.reserve(capacity);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool full() const { return data_.size() >= capacity_; }

  void Append(const T& value, Timestamp ts) {
    assert(!full());
    data_.push_back(value);
    ts_.push_back(ts);
  }
  void Append(T&& value, Timestamp ts) {
    assert(!full());
    data_.push_back(std::move(value));
    ts_.push_back(ts);
  }

  /// Copies a borrowed view in (merge holding tuples back, queue handoff).
  /// A selected view is compacted: the copy is dense.
  void AppendView(const ChunkView<T>& view) {
    assert(data_.size() + view.size() <= capacity_);
    if (view.dense()) {
      data_.insert(data_.end(), view.data(), view.data() + view.size());
      ts_.insert(ts_.end(), view.ts_data(), view.ts_data() + view.size());
      return;
    }
    for (std::size_t i = 0; i < view.size(); ++i) {
      data_.push_back(view[i]);
      ts_.push_back(view.ts(i));
    }
  }

  void Clear() {
    data_.clear();
    ts_.clear();
  }

  /// Bulk writer for kernels: sizes the chunk to exactly `n` rows and hands
  /// back the raw arrays for the caller to overwrite. Because the resize
  /// only value-initializes elements BEYOND the current size, a kernel that
  /// reuses one chunk at a steady row count re-initializes nothing — the
  /// caller must write every slot before the chunk is read, and must not
  /// mix this with Append (which appends after row n-1).
  std::pair<T*, Timestamp*> ResizeForOverwrite(std::size_t n) {
    assert(n <= capacity_);
    data_.resize(n);
    ts_.resize(n);
    return {data_.data(), ts_.data()};
  }

  ChunkView<T> view() const {
    return ChunkView<T>(data_.data(), ts_.data(), data_.size());
  }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
  std::vector<Timestamp> ts_;
};

template <typename T>
class ChunkPool;

/// Unique ownership of one pooled chunk. Move-only; destruction (or
/// Release) hands the storage back to the pool, cleared for reuse.
template <typename T>
class ChunkRef {
 public:
  ChunkRef() = default;
  ChunkRef(Chunk<T>* chunk, std::shared_ptr<ChunkPool<T>> pool)
      : chunk_(chunk), pool_(std::move(pool)) {}
  ~ChunkRef() { Release(); }

  ChunkRef(const ChunkRef&) = delete;
  ChunkRef& operator=(const ChunkRef&) = delete;
  ChunkRef(ChunkRef&& other) noexcept
      : chunk_(other.chunk_), pool_(std::move(other.pool_)) {
    other.chunk_ = nullptr;
  }
  ChunkRef& operator=(ChunkRef&& other) noexcept {
    if (this != &other) {
      Release();
      chunk_ = other.chunk_;
      pool_ = std::move(other.pool_);
      other.chunk_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const { return chunk_ != nullptr; }
  Chunk<T>* operator->() const { return chunk_; }
  Chunk<T>& operator*() const { return *chunk_; }
  Chunk<T>* get() const { return chunk_; }

  void Release();

 private:
  Chunk<T>* chunk_ = nullptr;
  std::shared_ptr<ChunkPool<T>> pool_;
};

/// Free list of reusable chunks. Acquire returns a cleared chunk with at
/// least the requested capacity, allocating only when the pool is dry —
/// the working set is bounded by the downstream queue depths, so the pool
/// stops allocating once the pipeline's high-water mark is reached.
template <typename T>
class ChunkPool : public std::enable_shared_from_this<ChunkPool<T>> {
 public:
  static std::shared_ptr<ChunkPool<T>> Create() {
    return std::make_shared<ChunkPool<T>>();
  }

  ChunkRef<T> Acquire(std::size_t capacity) {
    {
      std::lock_guard<SpinLock> guard(lock_);
      // First fit: free lists hold chunks of (usually) one capacity per
      // pipeline stage, so the scan is effectively O(1).
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i]->capacity() >= capacity) {
          Chunk<T>* chunk = free_[i].release();
          free_[i] = std::move(free_.back());
          free_.pop_back();
          reused_.fetch_add(1, std::memory_order_relaxed);
          return ChunkRef<T>(chunk, this->shared_from_this());
        }
      }
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return ChunkRef<T>(new Chunk<T>(capacity), this->shared_from_this());
  }

  void Release(Chunk<T>* chunk) {
    chunk->Clear();
    std::lock_guard<SpinLock> guard(lock_);
    free_.emplace_back(chunk);
  }

  /// Chunks newly allocated (steady state: stops growing).
  std::uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  std::uint64_t reused() const {
    return reused_.load(std::memory_order_relaxed);
  }

 private:
  SpinLock lock_;
  std::vector<std::unique_ptr<Chunk<T>>> free_;
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> reused_{0};
};

template <typename T>
void ChunkRef<T>::Release() {
  if (chunk_ != nullptr) {
    pool_->Release(chunk_);
    chunk_ = nullptr;
  }
  pool_.reset();
}

/// Why a builder flushed its chunk downstream.
enum class ChunkFlushReason : std::uint8_t {
  kFull = 0,      ///< chunk reached capacity
  kBoundary = 1,  ///< punctuation (or shutdown) forced the flush
  kTimeout = 2,   ///< linger deadline expired on a partial chunk
};

/// Flush-reason counters of one builder. Written by the producer thread,
/// read by stats() snapshots — relaxed atomics.
struct ChunkBuildStats {
  std::atomic<std::uint64_t> chunks{0};          ///< chunks flushed
  std::atomic<std::uint64_t> tuples{0};          ///< tuples inside them
  std::atomic<std::uint64_t> flush_full{0};      ///< reason: capacity
  std::atomic<std::uint64_t> flush_boundary{0};  ///< reason: punctuation
  std::atomic<std::uint64_t> flush_timeout{0};   ///< reason: linger expiry
};

/// Accumulates routed tuples into a pooled chunk; the owner decides when
/// to Take() (full / boundary / linger) and where the chunk goes. Single
/// producer thread per builder.
template <typename T>
class ChunkBuilder {
 public:
  ChunkBuilder() = default;
  ChunkBuilder(std::shared_ptr<ChunkPool<T>> pool, std::size_t capacity,
               std::uint64_t linger_micros, ChunkBuildStats* stats)
      : pool_(std::move(pool)),
        capacity_(capacity),
        linger_micros_(linger_micros),
        stats_(stats) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return current_ ? current_->size() : 0; }
  bool empty() const { return size() == 0; }
  bool full() const { return current_ && current_->full(); }

  /// Appends one tuple; returns true when the chunk just filled up (the
  /// caller should Take(kFull) and ship it).
  bool Append(const T& value, Timestamp ts) {
    if (!current_) {
      current_ = pool_->Acquire(capacity_);
      if (linger_micros_ > 0) opened_at_ = std::chrono::steady_clock::now();
    }
    current_->Append(value, ts);
    return current_->full();
  }

  /// True when a linger deadline is configured and the partial chunk has
  /// been open longer than it.
  bool LingerExpired() const {
    if (linger_micros_ == 0 || empty()) return false;
    const auto age = std::chrono::steady_clock::now() - opened_at_;
    return std::chrono::duration_cast<std::chrono::microseconds>(age)
               .count() >= static_cast<std::int64_t>(linger_micros_);
  }

  /// Hands the accumulated chunk over (empty ref when nothing buffered)
  /// and records the flush reason.
  ChunkRef<T> Take(ChunkFlushReason reason) {
    if (!current_) return ChunkRef<T>();
    if (stats_ != nullptr) {
      stats_->chunks.fetch_add(1, std::memory_order_relaxed);
      stats_->tuples.fetch_add(current_->size(), std::memory_order_relaxed);
      switch (reason) {
        case ChunkFlushReason::kFull:
          stats_->flush_full.fetch_add(1, std::memory_order_relaxed);
          break;
        case ChunkFlushReason::kBoundary:
          stats_->flush_boundary.fetch_add(1, std::memory_order_relaxed);
          break;
        case ChunkFlushReason::kTimeout:
          stats_->flush_timeout.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    return std::move(current_);
  }

 private:
  std::shared_ptr<ChunkPool<T>> pool_;
  std::size_t capacity_ = 0;
  std::uint64_t linger_micros_ = 0;
  ChunkBuildStats* stats_ = nullptr;
  ChunkRef<T> current_;
  std::chrono::steady_clock::time_point opened_at_{};
};

// ---------------------------------------------------------------------------
// Columnar (SoA) chunks
// ---------------------------------------------------------------------------
//
// Row chunks keep tuples whole; a vectorized kernel wants each FIELD
// contiguous so the predicate/projection loop touches one cache-friendly
// array. ColumnarTraits<T> describes how to decompose T into per-field
// columns: arithmetic types are trivially one column (the row array IS the
// column), struct types opt in with STREAMSI_COLUMNAR_FIELDS(Type,
// &Type::a, &Type::b, ...). Types without a trait simply have
// kColumnar == false and every columnar factory refuses them at compile
// time — row-typed operators keep working untouched (the transparent
// fallback).

/// Default: no columnar decomposition registered.
template <typename T, typename Enable = void>
struct ColumnarTraits {
  static constexpr bool kColumnar = false;
};

/// Arithmetic scalars: the tuple is its own (single) column.
template <typename T>
struct ColumnarTraits<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static constexpr bool kColumnar = true;
  static constexpr std::size_t kFields = 1;
  using Columns = std::tuple<std::vector<T>>;

  static void Reserve(Columns& c, std::size_t n) { std::get<0>(c).reserve(n); }
  static void Clear(Columns& c) { std::get<0>(c).clear(); }
  static void Scatter(Columns& c, const T* rows, std::size_t n) {
    std::get<0>(c).insert(std::get<0>(c).end(), rows, rows + n);
  }
  static void ScatterOne(Columns& c, const T& row) {
    std::get<0>(c).push_back(row);
  }
  static void Gather(const Columns& c, std::size_t i, T* out) {
    *out = std::get<0>(c)[i];
  }
  /// Field accessor for scalar operators (the row IS column 0).
  template <std::size_t I>
  static const T& Get(const T& row) {
    static_assert(I == 0, "arithmetic tuples have exactly one column");
    return row;
  }
};

/// SoA decomposition over a member-pointer pack: one std::vector per
/// field, scattered/gathered with one tight per-field loop each (the loop
/// body is a single strided load + contiguous store — auto-vectorizable).
template <typename T, auto... Members>
struct SoaLayout {
  static constexpr bool kColumnar = true;
  static constexpr std::size_t kFields = sizeof...(Members);
  static constexpr auto kMembers = std::tuple{Members...};
  using Columns = std::tuple<std::vector<
      std::remove_cv_t<std::remove_reference_t<decltype(std::declval<const T&>().*
                                                        Members)>>>...>;

  static void Reserve(Columns& c, std::size_t n) {
    std::apply([n](auto&... col) { (col.reserve(n), ...); }, c);
  }
  static void Clear(Columns& c) {
    std::apply([](auto&... col) { (col.clear(), ...); }, c);
  }
  static void Scatter(Columns& c, const T* rows, std::size_t n) {
    ScatterImpl(c, rows, n, std::make_index_sequence<kFields>{});
  }
  static void ScatterOne(Columns& c, const T& row) {
    ScatterOneImpl(c, row, std::make_index_sequence<kFields>{});
  }
  static void Gather(const Columns& c, std::size_t i, T* out) {
    GatherImpl(c, i, out, std::make_index_sequence<kFields>{});
  }
  /// Field accessor for scalar operators (e.g. ColumnarWhere's per-tuple
  /// fallback): reads field I of one row.
  template <std::size_t I>
  static const auto& Get(const T& row) {
    return row.*std::get<I>(kMembers);
  }

 private:
  template <std::size_t I>
  static void ScatterField(Columns& c, const T* rows, std::size_t n) {
    auto& col = std::get<I>(c);
    constexpr auto member = std::get<I>(kMembers);
    const std::size_t base = col.size();
    col.resize(base + n);
    auto* out = col.data() + base;
    for (std::size_t i = 0; i < n; ++i) out[i] = rows[i].*member;
  }
  template <std::size_t... Is>
  static void ScatterImpl(Columns& c, const T* rows, std::size_t n,
                          std::index_sequence<Is...>) {
    (ScatterField<Is>(c, rows, n), ...);
  }
  template <std::size_t... Is>
  static void ScatterOneImpl(Columns& c, const T& row,
                             std::index_sequence<Is...>) {
    (std::get<Is>(c).push_back(row.*std::get<Is>(kMembers)), ...);
  }
  template <std::size_t... Is>
  static void GatherImpl(const Columns& c, std::size_t i, T* out,
                         std::index_sequence<Is...>) {
    ((out->*std::get<Is>(kMembers) = std::get<Is>(c)[i]), ...);
  }
};

/// Registers a struct's columnar decomposition:
///   STREAMSI_COLUMNAR_FIELDS(Trade, &Trade::price, &Trade::qty);
#define STREAMSI_COLUMNAR_FIELDS(Type, ...)                         \
  template <>                                                       \
  struct ColumnarTraits<Type> : ::streamsi::SoaLayout<Type, __VA_ARGS__> {}

/// Fixed-capacity columnar carrier: per-field contiguous arrays + the
/// shared timestamp array + a selection vector, all reserved once, so a
/// reused columnar chunk is allocation-free at steady state (same
/// discipline as Chunk<T>).
///
/// Lifecycle per input chunk: ScatterFrom() decomposes the rows, a kernel
/// runs over one column (column<I>()) and may write surviving row indices
/// through selection_data()/SetSelection(), and the result leaves either
/// as a selection over the original row view (zero copy) or via
/// GatherInto() — the row-chunk adapter for consumers that want tuples
/// back.
template <typename T>
class ColumnarChunk {
  static_assert(ColumnarTraits<T>::kColumnar,
                "T has no columnar decomposition; register one with "
                "STREAMSI_COLUMNAR_FIELDS or use a row Chunk<T>");

 public:
  using Traits = ColumnarTraits<T>;

  explicit ColumnarChunk(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
    Traits::Reserve(columns_, capacity);
    ts_.reserve(capacity);
    selection_.resize(capacity);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ts_.size(); }
  bool empty() const { return ts_.empty(); }
  bool full() const { return ts_.size() >= capacity_; }

  /// Decomposes a row view into the per-field columns (one tight loop per
  /// field for dense input; selected input compacts row by row).
  void ScatterFrom(const ChunkView<T>& view) {
    assert(size() + view.size() <= capacity_);
    if (view.dense()) {
      Traits::Scatter(columns_, view.data(), view.size());
      ts_.insert(ts_.end(), view.ts_data(), view.ts_data() + view.size());
      return;
    }
    for (std::size_t i = 0; i < view.size(); ++i) {
      Traits::ScatterOne(columns_, view[i]);
      ts_.push_back(view.ts(i));
    }
  }

  void Append(const T& row, Timestamp ts) {
    assert(!full());
    Traits::ScatterOne(columns_, row);
    ts_.push_back(ts);
  }

  /// Contiguous column I — the array a kernel loops over.
  template <std::size_t I>
  const auto* column() const {
    return std::get<I>(columns_).data();
  }

  const Timestamp* ts_data() const { return ts_.data(); }

  /// Kernel-writable selection scratch (capacity() slots).
  std::uint32_t* selection_data() { return selection_.data(); }
  /// Declares that the first `count` selection slots are the survivors.
  void SetSelection(std::size_t count) {
    assert(count <= size());
    selected_ = count;
    has_selection_ = true;
  }
  bool has_selection() const { return has_selection_; }
  /// Rows surviving the selection (size() when no selection was set).
  std::size_t selected_size() const {
    return has_selection_ ? selected_ : size();
  }
  const std::uint32_t* selection() const {
    return has_selection_ ? selection_.data() : nullptr;
  }

  /// Row-chunk adapter: reassembles the (selected) rows into `out` — the
  /// transparent fallback for row-typed consumers.
  void GatherInto(Chunk<T>& out) const {
    if (has_selection_) {
      for (std::size_t i = 0; i < selected_; ++i) {
        const std::size_t row = selection_[i];
        T tuple;
        Traits::Gather(columns_, row, &tuple);
        out.Append(std::move(tuple), ts_[row]);
      }
      return;
    }
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      T tuple;
      Traits::Gather(columns_, i, &tuple);
      out.Append(std::move(tuple), ts_[i]);
    }
  }

  void Clear() {
    Traits::Clear(columns_);
    ts_.clear();
    selected_ = 0;
    has_selection_ = false;
  }

 private:
  std::size_t capacity_;
  typename Traits::Columns columns_;
  std::vector<Timestamp> ts_;
  std::vector<std::uint32_t> selection_;  ///< capacity() slots, kernel scratch
  std::size_t selected_ = 0;
  bool has_selection_ = false;
};

template <typename T>
class ColumnarChunkPool;

/// Unique ownership of one pooled columnar chunk — mirrors ChunkRef<T>.
template <typename T>
class ColumnarChunkRef {
 public:
  ColumnarChunkRef() = default;
  ColumnarChunkRef(ColumnarChunk<T>* chunk,
                   std::shared_ptr<ColumnarChunkPool<T>> pool)
      : chunk_(chunk), pool_(std::move(pool)) {}
  ~ColumnarChunkRef() { Release(); }

  ColumnarChunkRef(const ColumnarChunkRef&) = delete;
  ColumnarChunkRef& operator=(const ColumnarChunkRef&) = delete;
  ColumnarChunkRef(ColumnarChunkRef&& other) noexcept
      : chunk_(other.chunk_), pool_(std::move(other.pool_)) {
    other.chunk_ = nullptr;
  }
  ColumnarChunkRef& operator=(ColumnarChunkRef&& other) noexcept {
    if (this != &other) {
      Release();
      chunk_ = other.chunk_;
      pool_ = std::move(other.pool_);
      other.chunk_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const { return chunk_ != nullptr; }
  ColumnarChunk<T>* operator->() const { return chunk_; }
  ColumnarChunk<T>& operator*() const { return *chunk_; }
  ColumnarChunk<T>* get() const { return chunk_; }

  void Release();

 private:
  ColumnarChunk<T>* chunk_ = nullptr;
  std::shared_ptr<ColumnarChunkPool<T>> pool_;
};

/// Free list of reusable columnar chunks — same first-fit / clear-on-return
/// discipline and allocated()/reused() observability as ChunkPool<T>.
template <typename T>
class ColumnarChunkPool
    : public std::enable_shared_from_this<ColumnarChunkPool<T>> {
 public:
  static std::shared_ptr<ColumnarChunkPool<T>> Create() {
    return std::make_shared<ColumnarChunkPool<T>>();
  }

  ColumnarChunkRef<T> Acquire(std::size_t capacity) {
    {
      std::lock_guard<SpinLock> guard(lock_);
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i]->capacity() >= capacity) {
          ColumnarChunk<T>* chunk = free_[i].release();
          free_[i] = std::move(free_.back());
          free_.pop_back();
          reused_.fetch_add(1, std::memory_order_relaxed);
          return ColumnarChunkRef<T>(chunk, this->shared_from_this());
        }
      }
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return ColumnarChunkRef<T>(new ColumnarChunk<T>(capacity),
                               this->shared_from_this());
  }

  void Release(ColumnarChunk<T>* chunk) {
    chunk->Clear();
    std::lock_guard<SpinLock> guard(lock_);
    free_.emplace_back(chunk);
  }

  std::uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  std::uint64_t reused() const {
    return reused_.load(std::memory_order_relaxed);
  }

 private:
  SpinLock lock_;
  std::vector<std::unique_ptr<ColumnarChunk<T>>> free_;
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> reused_{0};
};

template <typename T>
void ColumnarChunkRef<T>::Release() {
  if (chunk_ != nullptr) {
    pool_->Release(chunk_);
    chunk_ = nullptr;
  }
  pool_.reset();
}

}  // namespace streamsi

#endif  // STREAMSI_STREAM_CHUNK_H_
