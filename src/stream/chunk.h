// Chunked (morsel) stream execution: fixed-size tuple carriers that move
// through the topology as one unit, so the per-tuple costs of the push
// model (§4.1) — a std::function dispatch, a queue push/pop, a routing
// hash — are paid once per chunk instead of once per tuple.
//
// The §3 punctuation contract is untouched: punctuations NEVER travel
// inside a chunk. A punctuation flushes every in-flight builder first
// (flush reason: boundary) and is then published as a plain
// StreamElement, so BOT/COMMIT framing, merge alignment and per-lane
// transaction batches are byte-identical to the per-tuple engine.
//
// Ownership model (three roles, zero steady-state allocation):
//   * Chunk<T>      — the storage: parallel tuple/timestamp arrays with a
//                     fixed capacity, reserved once at construction.
//   * ChunkView<T>  — a borrowed span handed to OnChunk subscribers. Valid
//                     ONLY for the duration of the call; an operator that
//                     needs the data later (e.g. MergePartitions holding
//                     post-boundary tuples back) must copy it into a chunk
//                     it owns.
//   * ChunkRef<T>   — unique ownership of a pooled chunk; returns the
//                     storage to its ChunkPool on destruction, cleared and
//                     ready for reuse. Queues hand off ChunkRefs, so a lane
//                     transports a pointer per chunk, not tuples.
//
// ChunkBuilder<T> accumulates routed tuples and reports WHY each chunk was
// flushed (full / boundary / timeout) — the flush-reason counters feed
// OperatorStats and make fill-ratio regressions observable.

#ifndef STREAMSI_STREAM_CHUNK_H_
#define STREAMSI_STREAM_CHUNK_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/latch.h"

namespace streamsi {

template <typename T>
class Chunk;

/// Borrowed span over a chunk's tuples + timestamps. Trivially copyable;
/// valid only while the underlying storage is (for OnChunk subscribers:
/// only for the duration of the call).
template <typename T>
class ChunkView {
 public:
  ChunkView() = default;
  ChunkView(const T* data, const Timestamp* ts, std::size_t size)
      : data_(data), ts_(ts), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  Timestamp ts(std::size_t i) const {
    assert(i < size_);
    return ts_[i];
  }

  const T* data() const { return data_; }
  const Timestamp* ts_data() const { return ts_; }

  /// Sub-span [offset, offset + count) — Batcher slices a chunk at batch
  /// boundaries without copying.
  ChunkView Slice(std::size_t offset, std::size_t count) const {
    assert(offset + count <= size_);
    return ChunkView(data_ + offset, ts_ + offset, count);
  }

 private:
  const T* data_ = nullptr;
  const Timestamp* ts_ = nullptr;
  std::size_t size_ = 0;
};

/// Fixed-capacity tuple carrier: parallel data/timestamp arrays, reserved
/// once. Append never reallocates (capacity is a hard bound), so a reused
/// chunk is allocation-free at steady state.
template <typename T>
class Chunk {
 public:
  explicit Chunk(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
    data_.reserve(capacity);
    ts_.reserve(capacity);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool full() const { return data_.size() >= capacity_; }

  void Append(const T& value, Timestamp ts) {
    assert(!full());
    data_.push_back(value);
    ts_.push_back(ts);
  }
  void Append(T&& value, Timestamp ts) {
    assert(!full());
    data_.push_back(std::move(value));
    ts_.push_back(ts);
  }

  /// Copies a borrowed view in (merge holding tuples back, queue handoff).
  void AppendView(const ChunkView<T>& view) {
    assert(data_.size() + view.size() <= capacity_);
    data_.insert(data_.end(), view.data(), view.data() + view.size());
    ts_.insert(ts_.end(), view.ts_data(), view.ts_data() + view.size());
  }

  void Clear() {
    data_.clear();
    ts_.clear();
  }

  ChunkView<T> view() const {
    return ChunkView<T>(data_.data(), ts_.data(), data_.size());
  }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
  std::vector<Timestamp> ts_;
};

template <typename T>
class ChunkPool;

/// Unique ownership of one pooled chunk. Move-only; destruction (or
/// Release) hands the storage back to the pool, cleared for reuse.
template <typename T>
class ChunkRef {
 public:
  ChunkRef() = default;
  ChunkRef(Chunk<T>* chunk, std::shared_ptr<ChunkPool<T>> pool)
      : chunk_(chunk), pool_(std::move(pool)) {}
  ~ChunkRef() { Release(); }

  ChunkRef(const ChunkRef&) = delete;
  ChunkRef& operator=(const ChunkRef&) = delete;
  ChunkRef(ChunkRef&& other) noexcept
      : chunk_(other.chunk_), pool_(std::move(other.pool_)) {
    other.chunk_ = nullptr;
  }
  ChunkRef& operator=(ChunkRef&& other) noexcept {
    if (this != &other) {
      Release();
      chunk_ = other.chunk_;
      pool_ = std::move(other.pool_);
      other.chunk_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const { return chunk_ != nullptr; }
  Chunk<T>* operator->() const { return chunk_; }
  Chunk<T>& operator*() const { return *chunk_; }
  Chunk<T>* get() const { return chunk_; }

  void Release();

 private:
  Chunk<T>* chunk_ = nullptr;
  std::shared_ptr<ChunkPool<T>> pool_;
};

/// Free list of reusable chunks. Acquire returns a cleared chunk with at
/// least the requested capacity, allocating only when the pool is dry —
/// the working set is bounded by the downstream queue depths, so the pool
/// stops allocating once the pipeline's high-water mark is reached.
template <typename T>
class ChunkPool : public std::enable_shared_from_this<ChunkPool<T>> {
 public:
  static std::shared_ptr<ChunkPool<T>> Create() {
    return std::make_shared<ChunkPool<T>>();
  }

  ChunkRef<T> Acquire(std::size_t capacity) {
    {
      std::lock_guard<SpinLock> guard(lock_);
      // First fit: free lists hold chunks of (usually) one capacity per
      // pipeline stage, so the scan is effectively O(1).
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i]->capacity() >= capacity) {
          Chunk<T>* chunk = free_[i].release();
          free_[i] = std::move(free_.back());
          free_.pop_back();
          reused_.fetch_add(1, std::memory_order_relaxed);
          return ChunkRef<T>(chunk, this->shared_from_this());
        }
      }
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return ChunkRef<T>(new Chunk<T>(capacity), this->shared_from_this());
  }

  void Release(Chunk<T>* chunk) {
    chunk->Clear();
    std::lock_guard<SpinLock> guard(lock_);
    free_.emplace_back(chunk);
  }

  /// Chunks newly allocated (steady state: stops growing).
  std::uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  std::uint64_t reused() const {
    return reused_.load(std::memory_order_relaxed);
  }

 private:
  SpinLock lock_;
  std::vector<std::unique_ptr<Chunk<T>>> free_;
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> reused_{0};
};

template <typename T>
void ChunkRef<T>::Release() {
  if (chunk_ != nullptr) {
    pool_->Release(chunk_);
    chunk_ = nullptr;
  }
  pool_.reset();
}

/// Why a builder flushed its chunk downstream.
enum class ChunkFlushReason : std::uint8_t {
  kFull = 0,      ///< chunk reached capacity
  kBoundary = 1,  ///< punctuation (or shutdown) forced the flush
  kTimeout = 2,   ///< linger deadline expired on a partial chunk
};

/// Flush-reason counters of one builder. Written by the producer thread,
/// read by stats() snapshots — relaxed atomics.
struct ChunkBuildStats {
  std::atomic<std::uint64_t> chunks{0};          ///< chunks flushed
  std::atomic<std::uint64_t> tuples{0};          ///< tuples inside them
  std::atomic<std::uint64_t> flush_full{0};      ///< reason: capacity
  std::atomic<std::uint64_t> flush_boundary{0};  ///< reason: punctuation
  std::atomic<std::uint64_t> flush_timeout{0};   ///< reason: linger expiry
};

/// Accumulates routed tuples into a pooled chunk; the owner decides when
/// to Take() (full / boundary / linger) and where the chunk goes. Single
/// producer thread per builder.
template <typename T>
class ChunkBuilder {
 public:
  ChunkBuilder() = default;
  ChunkBuilder(std::shared_ptr<ChunkPool<T>> pool, std::size_t capacity,
               std::uint64_t linger_micros, ChunkBuildStats* stats)
      : pool_(std::move(pool)),
        capacity_(capacity),
        linger_micros_(linger_micros),
        stats_(stats) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return current_ ? current_->size() : 0; }
  bool empty() const { return size() == 0; }
  bool full() const { return current_ && current_->full(); }

  /// Appends one tuple; returns true when the chunk just filled up (the
  /// caller should Take(kFull) and ship it).
  bool Append(const T& value, Timestamp ts) {
    if (!current_) {
      current_ = pool_->Acquire(capacity_);
      if (linger_micros_ > 0) opened_at_ = std::chrono::steady_clock::now();
    }
    current_->Append(value, ts);
    return current_->full();
  }

  /// True when a linger deadline is configured and the partial chunk has
  /// been open longer than it.
  bool LingerExpired() const {
    if (linger_micros_ == 0 || empty()) return false;
    const auto age = std::chrono::steady_clock::now() - opened_at_;
    return std::chrono::duration_cast<std::chrono::microseconds>(age)
               .count() >= static_cast<std::int64_t>(linger_micros_);
  }

  /// Hands the accumulated chunk over (empty ref when nothing buffered)
  /// and records the flush reason.
  ChunkRef<T> Take(ChunkFlushReason reason) {
    if (!current_) return ChunkRef<T>();
    if (stats_ != nullptr) {
      stats_->chunks.fetch_add(1, std::memory_order_relaxed);
      stats_->tuples.fetch_add(current_->size(), std::memory_order_relaxed);
      switch (reason) {
        case ChunkFlushReason::kFull:
          stats_->flush_full.fetch_add(1, std::memory_order_relaxed);
          break;
        case ChunkFlushReason::kBoundary:
          stats_->flush_boundary.fetch_add(1, std::memory_order_relaxed);
          break;
        case ChunkFlushReason::kTimeout:
          stats_->flush_timeout.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    return std::move(current_);
  }

 private:
  std::shared_ptr<ChunkPool<T>> pool_;
  std::size_t capacity_ = 0;
  std::uint64_t linger_micros_ = 0;
  ChunkBuildStats* stats_ = nullptr;
  ChunkRef<T> current_;
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace streamsi

#endif  // STREAMSI_STREAM_CHUNK_H_
