// CRC-32C (Castagnoli) for WAL and SSTable integrity checking.

#ifndef STREAMSI_COMMON_CRC32_H_
#define STREAMSI_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace streamsi {

/// CRC-32C of `data`, seeded with `init` (pass a previous CRC to chain).
std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t init = 0);

inline std::uint32_t Crc32c(std::string_view s, std::uint32_t init = 0) {
  return Crc32c(s.data(), s.size(), init);
}

/// Masks a CRC so that CRCs of data containing embedded CRCs stay robust
/// (RocksDB/LevelDB idiom).
inline std::uint32_t MaskCrc(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline std::uint32_t UnmaskCrc(std::uint32_t masked) {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace streamsi

#endif  // STREAMSI_COMMON_CRC32_H_
