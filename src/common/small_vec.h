// SmallVec: a minimal vector with inline storage for the first N elements.
//
// The commit path gathers small, bounded collections per transaction
// (written states, resolved stores, affected groups): a std::vector would
// heap-allocate on every commit. SmallVec keeps them on the coordinator's
// stack and only spills to the heap past the inline capacity — the
// steady-state commit bookkeeping stays allocation-free.
//
// Restricted to trivially destructible element types (ids, pointers, pairs
// of such): spilling and clearing then need no element-wise destruction.

#ifndef STREAMSI_COMMON_SMALL_VEC_H_
#define STREAMSI_COMMON_SMALL_VEC_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <type_traits>

namespace streamsi {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_destructible_v<T>,
                "SmallVec is for trivially destructible payloads");

 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    data_[size_++] = value;
  }

  /// push_back only if the value is not already present (linear probe —
  /// these collections are a handful of elements).
  void push_back_unique(const T& value) {
    if (!contains(value)) push_back(value);
  }

  bool contains(const T& value) const {
    return std::find(begin(), end(), value) != end();
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* data() const { return data_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

 private:
  void Grow() {
    const std::size_t grown = capacity_ * 2;
    auto heap = std::make_unique<T[]>(grown);
    std::copy(data_, data_ + size_, heap.get());
    heap_ = std::move(heap);
    data_ = heap_.get();
    capacity_ = grown;
  }

  T inline_[N];
  std::unique_ptr<T[]> heap_;
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace streamsi

#endif  // STREAMSI_COMMON_SMALL_VEC_H_
