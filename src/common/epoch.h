// Epoch-based memory reclamation for the latch-free read path.
//
// Readers wrap their critical section in an EpochGuard: a single store to a
// thread-private, cache-line-padded slot (no shared-cacheline CAS, no latch).
// Writers that unlink shared objects (shard bucket tables replaced on growth,
// MVCC value buffers replaced by installs or reclaimed by GC) hand them to
// Retire() instead of deleting them; the manager frees a retired object only
// after every reader that could still hold a pointer to it has exited its
// critical section (quiescence).
//
// The scheme is classic three-epoch EBR (Fraser '04; crossbeam/folly do the
// same): the global epoch advances only when every active reader slot has
// caught up to it, and garbage retired in epoch `e` is freed once the global
// epoch reaches `e + 2`. A reader that might have obtained a pointer to an
// object before it was unlinked pins an epoch <= e + 1 and therefore blocks
// the second advance until it exits.
//
// Guards are reentrant (nesting tracked per thread); Enter costs one relaxed
// load + one store + one fence, Exit one store. Neither allocates.

#ifndef STREAMSI_COMMON_EPOCH_H_
#define STREAMSI_COMMON_EPOCH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/latch.h"

namespace streamsi {

class EpochManager {
 public:
  /// Process-wide manager. Leaked on purpose: stores retire garbage from
  /// their destructors, which may run during static destruction.
  static EpochManager& Global() {
    static EpochManager* manager = new EpochManager();
    return *manager;
  }

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Sentinel epoch for slots with no active reader (epochs start at 1).
  static constexpr std::uint64_t kIdle = 0;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
    std::atomic<bool> claimed{false};
  };

  // ------------------------------------------------------------- readers ---

  /// Marks this thread as inside an epoch-protected critical section.
  /// Pointers obtained from epoch-protected structures stay valid until the
  /// matching Exit().
  void Enter(Slot* slot) {
    // The seq_cst fence orders the slot publication before every subsequent
    // load of protected pointers: a reclaimer that does not observe this
    // slot as active is guaranteed the reader entered after the unlink.
    slot->epoch.store(global_epoch_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void Exit(Slot* slot) {
    slot->epoch.store(kIdle, std::memory_order_release);
  }

  /// Claims a reader slot for a new thread. Slots live in fixed-size blocks
  /// chained on demand, so there is no hard cap on simultaneously
  /// registered threads — exhausting the existing blocks appends a new one
  /// instead of failing. Blocks are never freed (total footprint is bounded
  /// by the peak live-thread count, one cache line per slot), and released
  /// slots are recycled by later threads.
  Slot* AcquireSlot() {
    for (SlotBlock* block = &head_block_;;) {
      for (Slot& slot : block->slots) {
        bool expected = false;
        if (!slot.claimed.load(std::memory_order_relaxed) &&
            slot.claimed.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          return &slot;
        }
      }
      SlotBlock* next = block->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        auto* fresh = new SlotBlock();
        fresh->slots[0].claimed.store(true, std::memory_order_relaxed);
        SlotBlock* expected = nullptr;
        if (block->next.compare_exchange_strong(expected, fresh,
                                                std::memory_order_acq_rel)) {
          return &fresh->slots[0];
        }
        delete fresh;  // another thread appended first; scan its block
        next = expected;
      }
      block = next;
    }
  }

  void ReleaseSlot(Slot* slot) {
    slot->epoch.store(kIdle, std::memory_order_release);
    slot->claimed.store(false, std::memory_order_release);
  }

  // ------------------------------------------------------------- writers ---

  /// Transfers ownership of `object` to the manager; it is deleted once all
  /// readers active at retire time have exited.
  template <typename T>
  void Retire(T* object) {
    RetireRaw(const_cast<void*>(static_cast<const void*>(object)),
              [](void* p) { delete static_cast<T*>(p); });
  }

  void RetireRaw(void* object, void (*deleter)(void*)) {
    if (object == nullptr) return;
    // The unlink (e.g. the release store that replaced a bucket table) must
    // be globally visible before the retire epoch is sampled: otherwise a
    // reader pinning epoch e+1 could still load the old pointer while the
    // garbage is tagged e, and TryReclaim would free it one advance too
    // early. The seq_cst fence orders the caller's unlink store before this
    // epoch load.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
    {
      std::lock_guard<SpinLock> guard(garbage_lock_);
      garbage_.push_back(Garbage{epoch, object, deleter});
    }
    // Opportunistic inline sweep — suppressed while the background
    // reclaimer runs: draining on a cadence replaces the every-N heuristic,
    // and keeps the retire fast path to the push_back above.
    if (!reclaimer_active_.load(std::memory_order_acquire) &&
        retire_count_.fetch_add(1, std::memory_order_relaxed) %
                kReclaimInterval ==
            kReclaimInterval - 1) {
      TryReclaim();
    }
  }

  // ------------------------------------------------ background reclaimer ---

  /// Starts (or joins, ref-counted) the background reclaimer: a thread that
  /// drains retired garbage every `interval` instead of the opportunistic
  /// every-N-retires sweep. Steady garbage sources (version-array growth,
  /// bucket-table growth) then reclaim on a bounded cadence even when no
  /// further retires arrive. Each StartBackgroundReclaimer must be paired
  /// with one StopBackgroundReclaimer — owners (e.g. Database) stop it
  /// before tearing down the structures whose garbage it drains, so no
  /// reclaim runs during static destruction.
  void StartBackgroundReclaimer(
      std::chrono::milliseconds interval = std::chrono::milliseconds(1)) {
    std::lock_guard<std::mutex> guard(reclaimer_mutex_);
    reclaim_interval_ = interval;
    if (++reclaimer_refs_ == 1) {
      // Each spawn gets a fresh generation: a predecessor thread that was
      // stopped but has not yet observed its shutdown must NOT be revived
      // by this start (it would double-run the loop and hang the stopping
      // thread's join forever) — it exits on the generation mismatch.
      const std::uint64_t generation = ++reclaimer_generation_;
      reclaimer_active_.store(true, std::memory_order_release);
      reclaimer_thread_ =
          std::thread([this, generation] { ReclaimerLoop(generation); });
    }
  }

  /// Drops one reclaimer reference; the last one stops and joins the
  /// thread (which drains what it can on the way out).
  void StopBackgroundReclaimer() {
    std::thread to_join;
    {
      std::lock_guard<std::mutex> guard(reclaimer_mutex_);
      if (reclaimer_refs_ == 0 || --reclaimer_refs_ > 0) return;
      reclaimer_active_.store(false, std::memory_order_release);
      to_join = std::move(reclaimer_thread_);
    }
    reclaimer_cv_.notify_all();
    if (to_join.joinable()) to_join.join();
  }

  bool reclaimer_running() const {
    return reclaimer_active_.load(std::memory_order_acquire);
  }

  /// Tries to advance the global epoch (possible only when every active
  /// reader has caught up to it) and frees all garbage two epochs old.
  /// Returns the number of objects freed.
  std::size_t TryReclaim() {
    const std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool can_advance = true;
    for (const SlotBlock* block = &head_block_; block != nullptr && can_advance;
         block = block->next.load(std::memory_order_acquire)) {
      for (const Slot& slot : block->slots) {
        const std::uint64_t slot_epoch =
            slot.epoch.load(std::memory_order_acquire);
        if (slot_epoch != kIdle && slot_epoch < epoch) {
          can_advance = false;
          break;
        }
      }
    }
    std::uint64_t next = epoch;
    if (can_advance) {
      std::uint64_t expected = epoch;
      if (global_epoch_.compare_exchange_strong(expected, epoch + 1,
                                                std::memory_order_acq_rel)) {
        next = epoch + 1;
      } else {
        next = expected;  // someone else advanced; their view is current
      }
    }

    std::vector<Garbage> to_free;
    {
      std::lock_guard<SpinLock> guard(garbage_lock_);
      std::size_t kept = 0;
      for (Garbage& g : garbage_) {
        if (g.epoch + 2 <= next) {
          to_free.push_back(g);
        } else {
          garbage_[kept++] = g;
        }
      }
      garbage_.resize(kept);
    }
    for (const Garbage& g : to_free) g.deleter(g.object);
    return to_free.size();
  }

  /// Test/shutdown helper: reclaims until no garbage remains. Must only be
  /// called while no reader is inside a guard.
  void DrainForTesting() {
    while (GarbageCount() > 0) {
      if (TryReclaim() == 0) CpuRelax();
    }
  }

  std::size_t GarbageCount() {
    std::lock_guard<SpinLock> guard(garbage_lock_);
    return garbage_.size();
  }

  std::uint64_t CurrentEpoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint64_t kReclaimInterval = 64;

  struct Garbage {
    std::uint64_t epoch;
    void* object;
    void (*deleter)(void*);
  };

  void ReclaimerLoop(std::uint64_t generation) {
    // Loop liveness is keyed on refs + the SPAWN generation, both read
    // under the mutex: the shared active flag alone could flip back to true
    // (stop/start race) and resurrect this thread after its owner already
    // moved it out for joining.
    std::unique_lock<std::mutex> lock(reclaimer_mutex_);
    while (reclaimer_refs_ > 0 && reclaimer_generation_ == generation) {
      reclaimer_cv_.wait_for(lock, reclaim_interval_);
      if (reclaimer_refs_ == 0 || reclaimer_generation_ != generation) break;
      lock.unlock();
      // One pass per tick advances the epoch at most once; garbage retired
      // in epoch e frees after the second advance, i.e. within two ticks of
      // quiescence.
      TryReclaim();
      lock.lock();
    }
    lock.unlock();
    TryReclaim();  // parting sweep so a stopped reclaimer leaves no backlog
  }

  /// One chunk of reader slots. Blocks are appended (never removed) under
  /// CAS on `next`, so reclaimers can walk the chain without locking.
  struct SlotBlock {
    static constexpr int kSlotsPerBlock = 256;
    Slot slots[kSlotsPerBlock];
    std::atomic<SlotBlock*> next{nullptr};
  };

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::uint64_t> retire_count_{0};
  SlotBlock head_block_;
  SpinLock garbage_lock_;
  std::vector<Garbage> garbage_;  // guarded by garbage_lock_

  /// Background reclaimer state (ref-counted; thread exists while refs>0).
  std::mutex reclaimer_mutex_;
  std::condition_variable reclaimer_cv_;
  std::thread reclaimer_thread_;          // guarded by reclaimer_mutex_
  int reclaimer_refs_ = 0;                // guarded by reclaimer_mutex_
  std::uint64_t reclaimer_generation_ = 0;         // guarded by ...mutex_
  std::chrono::milliseconds reclaim_interval_{1};  // guarded by ...mutex_
  std::atomic<bool> reclaimer_active_{false};
};

/// RAII epoch critical section. Reentrant: nested guards on the same thread
/// only pin the epoch once. Never allocates (the thread's slot is claimed on
/// first use and recycled at thread exit).
class EpochGuard {
 public:
  EpochGuard() {
    ThreadState& state = State();
    if (state.depth++ == 0) EpochManager::Global().Enter(state.slot);
  }
  ~EpochGuard() {
    ThreadState& state = State();
    if (--state.depth == 0) EpochManager::Global().Exit(state.slot);
  }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  struct ThreadState {
    ThreadState() : slot(EpochManager::Global().AcquireSlot()) {}
    ~ThreadState() { EpochManager::Global().ReleaseSlot(slot); }
    EpochManager::Slot* const slot;
    int depth = 0;
  };

  static ThreadState& State() {
    thread_local ThreadState state;
    return state;
  }
};

}  // namespace streamsi

#endif  // STREAMSI_COMMON_EPOCH_H_
