#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace streamsi {

namespace {

/// Maps errno to a Status. ENOSPC (and its quota sibling) gets its own code
/// so the database can degrade to read-only instead of treating a full disk
/// as a generic sticky IO error.
Status ErrnoStatus(const std::string& context) {
  const int err = errno;
  const std::string msg = context + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return Status::NoSpace(msg);
  return Status::IoError(msg);
}

/// open(2) with EINTR retry: a signal landing during open must not surface
/// as a spurious IO error.
int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// fsync(2) with EINTR retry (same reasoning; POSIX allows fsync to be
/// interrupted, and retrying is the standard response).
int FsyncRetry(int fd) {
  for (;;) {
    const int rc = ::fsync(fd);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

constexpr std::size_t kWriteBufferLimit = 64 * 1024;

class PosixWritableFile final : public WritableFile {
 public:
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Flush();
      ::close(fd_);
    }
  }

  Status Open(const std::string& path, bool truncate) {
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate) flags |= O_TRUNC;
    fd_ = OpenRetry(path.c_str(), flags, 0644);
    if (fd_ < 0) return ErrnoStatus("open " + path);
    path_ = path;
    struct stat st;
    if (::fstat(fd_, &st) == 0) {
      size_ = truncate ? 0 : static_cast<std::uint64_t>(st.st_size);
    }
    buffer_.reserve(kWriteBufferLimit);
    return Status::OK();
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IoError("append to closed file");
    buffer_.append(data.data(), data.size());
    size_ += data.size();
    if (buffer_.size() >= kWriteBufferLimit) return Flush();
    return Status::OK();
  }

  Status Flush() override {
    if (fd_ < 0) return Status::IoError("flush closed file");
    // Retry loop: write(2) may be interrupted (EINTR) or perform a short
    // write; both continue from where they stopped instead of failing.
    const char* p = buffer_.data();
    std::size_t left = buffer_.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write " + path_);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    buffer_.clear();
    return Status::OK();
  }

  Status Sync() override {
    STREAMSI_RETURN_NOT_OK(Flush());
    if (FsyncRetry(fd_) != 0) return ErrnoStatus("fsync " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    Status s = Flush();
    // No EINTR retry on close: POSIX leaves the fd state unspecified after
    // an interrupted close, so retrying risks closing a recycled fd.
    if (::close(fd_) != 0 && s.ok()) s = ErrnoStatus("close " + path_);
    fd_ = -1;
    return s;
  }

  std::uint64_t size() const override { return size_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string buffer_;  // small user-space write buffer
  std::string path_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Open(const std::string& path) {
    fd_ = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) return ErrnoStatus("open " + path);
    struct stat st;
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat " + path);
    size_ = static_cast<std::uint64_t>(st.st_size);
    return Status::OK();
  }

  Status Read(std::uint64_t offset, std::size_t n,
              std::string* out) const override {
    out->resize(n);
    // Retry loop: pread(2) may be interrupted (EINTR) or return fewer
    // bytes than requested; continue from the current position.
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::pread(fd_, out->data() + got, n - got,
                                static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread");
      }
      if (r == 0) return Status::IoError("short read");
      got += static_cast<std::size_t>(r);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    return Status::OK();
  }

  std::uint64_t size() const override { return size_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    auto file = std::make_unique<PosixWritableFile>();
    STREAMSI_RETURN_NOT_OK(file->Open(path, truncate));
    return std::unique_ptr<WritableFile>(std::move(file));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    auto file = std::make_unique<PosixRandomAccessFile>();
    STREAMSI_RETURN_NOT_OK(file->Open(path));
    return std::unique_ptr<RandomAccessFile>(std::move(file));
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return ErrnoStatus("mkdir " + path);
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
    return ErrnoStatus("unlink " + path);
  }

  Status RemoveDirRecursive(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return errno == ENOENT ? Status::OK() : ErrnoStatus("stat " + path);
    }
    if (!S_ISDIR(st.st_mode)) return RemoveFile(path);
    std::vector<std::string> names;
    STREAMSI_RETURN_NOT_OK(ListDir(path, &names));
    for (const auto& name : names) {
      STREAMSI_RETURN_NOT_OK(RemoveDirRecursive(path + "/" + name));
    }
    if (::rmdir(path.c_str()) != 0) return ErrnoStatus("rmdir " + path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status FileSize(const std::string& path, std::uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
    *size = static_cast<std::uint64_t>(st.st_size);
    return Status::OK();
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir " + path);
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names->push_back(name);
    }
    ::closedir(dir);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open dir " + dir);
    Status s = Status::OK();
    if (FsyncRetry(fd) != 0) s = ErrnoStatus("fsync dir " + dir);
    ::close(fd);
    return s;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked: outlives static dtors
  return env;
}

Status Env::ListNumberedFiles(const std::string& dir,
                              const std::string& prefix,
                              const std::string& suffix,
                              std::vector<std::uint64_t>* numbers) {
  // Only a MISSING directory is an empty chain (see header contract).
  if (!FileExists(dir)) return Status::OK();
  std::vector<std::string> names;
  STREAMSI_RETURN_NOT_OK(ListDir(dir, &names));
  for (const std::string& name : names) {
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    std::uint64_t n = 0;
    bool numeric = true;
    for (std::size_t i = prefix.size(); i < name.size() - suffix.size();
         ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      n = n * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (numeric) numbers->push_back(n);
  }
  return Status::OK();
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  auto file = NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  return (*file)->Read(0, (*file)->size(), out);
}

Status Env::WriteStringToFileAtomic(const std::string& path,
                                    std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    auto file = NewWritableFile(tmp, /*truncate=*/true);
    if (!file.ok()) return file.status();
    STREAMSI_RETURN_NOT_OK((*file)->Append(contents));
    STREAMSI_RETURN_NOT_OK((*file)->Sync());
    STREAMSI_RETURN_NOT_OK((*file)->Close());
  }
  STREAMSI_RETURN_NOT_OK(RenameFile(tmp, path));
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    return SyncDir(path.substr(0, slash));
  }
  return Status::OK();
}

namespace fsutil {

Status CreateDirIfMissing(const std::string& path) {
  return Env::Default()->CreateDirIfMissing(path);
}

Status RemoveFile(const std::string& path) {
  return Env::Default()->RemoveFile(path);
}

Status RemoveDirRecursive(const std::string& path) {
  return Env::Default()->RemoveDirRecursive(path);
}

bool FileExists(const std::string& path) {
  return Env::Default()->FileExists(path);
}

Status FileSize(const std::string& path, std::uint64_t* size) {
  return Env::Default()->FileSize(path, size);
}

Status ListDir(const std::string& path, std::vector<std::string>* names) {
  return Env::Default()->ListDir(path, names);
}

Status ListNumberedFiles(const std::string& dir, const std::string& prefix,
                         const std::string& suffix,
                         std::vector<std::uint64_t>* numbers) {
  return Env::Default()->ListNumberedFiles(dir, prefix, suffix, numbers);
}

Status ReadFileToString(const std::string& path, std::string* out) {
  return Env::Default()->ReadFileToString(path, out);
}

Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view contents) {
  return Env::Default()->WriteStringToFileAtomic(path, contents);
}

Status RenameFile(const std::string& from, const std::string& to) {
  return Env::Default()->RenameFile(from, to);
}

Status SyncDir(const std::string& dir) {
  return Env::Default()->SyncDir(dir);
}

}  // namespace fsutil

}  // namespace streamsi
