#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace streamsi {

namespace {
Status ErrnoStatus(const std::string& context) {
  return Status::IoError(context + ": " + std::strerror(errno));
}
constexpr std::size_t kWriteBufferLimit = 64 * 1024;
}  // namespace

WritableFile::~WritableFile() {
  if (fd_ >= 0) {
    Flush();
    ::close(fd_);
  }
}

Status WritableFile::Open(const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return ErrnoStatus("open " + path);
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) == 0) {
    size_ = truncate ? 0 : static_cast<std::uint64_t>(st.st_size);
  }
  buffer_.reserve(kWriteBufferLimit);
  return Status::OK();
}

Status WritableFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::IoError("append to closed file");
  buffer_.append(data.data(), data.size());
  size_ += data.size();
  if (buffer_.size() >= kWriteBufferLimit) return Flush();
  return Status::OK();
}

Status WritableFile::Flush() {
  if (fd_ < 0) return Status::IoError("flush closed file");
  const char* p = buffer_.data();
  std::size_t left = buffer_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

Status WritableFile::Sync() {
  STREAMSI_RETURN_NOT_OK(Flush());
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_);
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  Status s = Flush();
  if (::close(fd_) != 0 && s.ok()) s = ErrnoStatus("close " + path_);
  fd_ = -1;
  return s;
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Open(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat " + path);
  size_ = static_cast<std::uint64_t>(st.st_size);
  return Status::OK();
}

Status RandomAccessFile::Read(std::uint64_t offset, std::size_t n,
                              std::string* out) const {
  out->resize(n);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::pread(fd_, out->data() + got, n - got,
                              static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread");
    }
    if (r == 0) return Status::IoError("short read");
    got += static_cast<std::size_t>(r);
  }
  return Status::OK();
}

Status RandomAccessFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return Status::OK();
}

namespace fsutil {

Status CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return ErrnoStatus("mkdir " + path);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return ErrnoStatus("unlink " + path);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status FileSize(const std::string& path, std::uint64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  *size = static_cast<std::uint64_t>(st.st_size);
  return Status::OK();
}

Status ListDir(const std::string& path, std::vector<std::string>* names) {
  names->clear();
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoStatus("opendir " + path);
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names->push_back(name);
  }
  ::closedir(dir);
  return Status::OK();
}

Status ListNumberedFiles(const std::string& dir, const std::string& prefix,
                         const std::string& suffix,
                         std::vector<std::uint64_t>* numbers) {
  // Only a MISSING directory is an empty chain. Any other listing failure
  // (EACCES, EIO, ...) must propagate: recovery builds its replay chain
  // from this result, and treating an unreadable directory as empty would
  // silently drop every segment's committed records.
  if (!FileExists(dir)) return Status::OK();
  std::vector<std::string> names;
  STREAMSI_RETURN_NOT_OK(ListDir(dir, &names));
  for (const std::string& name : names) {
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    std::uint64_t n = 0;
    bool numeric = true;
    for (std::size_t i = prefix.size(); i < name.size() - suffix.size();
         ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      n = n * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (numeric) numbers->push_back(n);
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return errno == ENOENT ? Status::OK() : ErrnoStatus("stat " + path);
  }
  if (!S_ISDIR(st.st_mode)) return RemoveFile(path);
  std::vector<std::string> names;
  STREAMSI_RETURN_NOT_OK(ListDir(path, &names));
  for (const auto& name : names) {
    STREAMSI_RETURN_NOT_OK(RemoveDirRecursive(path + "/" + name));
  }
  if (::rmdir(path.c_str()) != 0) return ErrnoStatus("rmdir " + path);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  RandomAccessFile file;
  STREAMSI_RETURN_NOT_OK(file.Open(path));
  return file.Read(0, file.size(), out);
}

Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    WritableFile file;
    STREAMSI_RETURN_NOT_OK(file.Open(tmp, /*truncate=*/true));
    STREAMSI_RETURN_NOT_OK(file.Append(contents));
    STREAMSI_RETURN_NOT_OK(file.Sync());
    STREAMSI_RETURN_NOT_OK(file.Close());
  }
  STREAMSI_RETURN_NOT_OK(RenameFile(tmp, path));
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    return SyncDir(path.substr(0, slash));
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename " + from + " -> " + to);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = ErrnoStatus("fsync dir " + dir);
  ::close(fd);
  return s;
}

}  // namespace fsutil

}  // namespace streamsi
