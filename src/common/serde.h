// Serializer<T> traits: typed keys/values <-> byte strings.
//
// The transactional table (§4.1) is a wrapper over "any existing backend
// structure with a key-value mapping"; backends are byte-oriented, so typed
// tables translate through these traits. Specializations are provided for
// trivially copyable types and std::string; user types can either be
// trivially copyable or specialize Serializer<T>.

#ifndef STREAMSI_COMMON_SERDE_H_
#define STREAMSI_COMMON_SERDE_H_

#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

namespace streamsi {

/// Default serializer: memcpy for trivially copyable types.
template <typename T, typename Enable = void>
struct Serializer {
  static_assert(std::is_trivially_copyable_v<T>,
                "Specialize streamsi::Serializer<T> for non-trivially-"
                "copyable types");

  static void Encode(const T& value, std::string* out) {
    out->append(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  static bool Decode(std::string_view in, T* out) {
    if (in.size() != sizeof(T)) return false;
    std::memcpy(out, in.data(), sizeof(T));
    return true;
  }
};

/// Strings serialize as their raw bytes.
template <>
struct Serializer<std::string> {
  static void Encode(const std::string& value, std::string* out) {
    out->append(value);
  }
  static bool Decode(std::string_view in, std::string* out) {
    out->assign(in.data(), in.size());
    return true;
  }
};

/// Convenience: encode to a fresh string.
template <typename T>
std::string EncodeToString(const T& value) {
  std::string out;
  Serializer<T>::Encode(value, &out);
  return out;
}

/// Fixed-width big-endian encoding for integer keys so that the byte order
/// matches the numeric order (needed for ordered backends / scans).
template <typename Int>
std::string OrderPreservingKey(Int key) {
  static_assert(std::is_unsigned_v<Int>, "use unsigned keys for ordering");
  std::string out(sizeof(Int), '\0');
  for (std::size_t i = 0; i < sizeof(Int); ++i) {
    out[i] = static_cast<char>(key >> (8 * (sizeof(Int) - 1 - i)));
  }
  return out;
}

template <typename Int>
Int DecodeOrderPreservingKey(std::string_view in) {
  Int key = 0;
  for (std::size_t i = 0; i < sizeof(Int) && i < in.size(); ++i) {
    key = static_cast<Int>((key << 8) |
                           static_cast<unsigned char>(in[i]));
  }
  return key;
}

}  // namespace streamsi

#endif  // STREAMSI_COMMON_SERDE_H_
