// FaultEnv: a deterministic, in-memory-shadowed storage environment for
// hostile testing — and FaultSchedule, the shared fault vocabulary used by
// both env-level injection (this file) and backend-level injection
// (storage/faulty_backend.h), so one test can compose both.
//
// FaultEnv models the two-tier durability of a real filesystem: every
// Append lands in the shadow file immediately ("written", survives a
// process crash), but only Sync advances the per-file durable watermark
// ("synced", survives a power cut). CrashAndRecoverFs() simulates the
// power cut: everything beyond each file's watermark is discarded (or, in
// kKeepRandomPrefix mode, an arbitrary deterministic prefix of the
// unsynced suffix survives — modeling page-cache pages that happened to
// reach the platter, which is what produces torn tails for replay).
//
// On top of the power-cut model it injects, deterministically:
//   * short/torn writes  — TearNextAppend(): a partial prefix of the next
//     append lands, then the write fails (mid-record tear)
//   * ENOSPC             — SetNoSpaceByteBudget(): appends past the budget
//     fail with Status::NoSpace, like a full disk
//   * EIO on the Nth op  — schedule().Arm("env.sync", n, ...) etc.
//     (points: "env.append", "env.sync", "env.read", "env.rename",
//     "env.remove")
//   * power cut at an op budget — CutPowerAfterOps(): the Nth counted op
//     (append, sync, rename, remove, mkdir) dies and every later IO fails
//     until CrashAndRecoverFs(). Appends tear mid-write; metadata ops
//     (rename/remove/mkdir) apply their effect first — the journal entry
//     reached the disk as the power died — so checkpoint-prune and LSM
//     segment-delete crash windows are honestly simulated.
//
// Everything is keyed on an op counter + a seeded RNG, so a failing test
// reproduces from its seed alone.

#ifndef STREAMSI_COMMON_FAULT_ENV_H_
#define STREAMSI_COMMON_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/random.h"
#include "common/status.h"

namespace streamsi {

/// Deterministic named injection points: "after N passes of point P, fail
/// the next K hits with status S". Thread-safe; shared by FaultEnv
/// ("env.append", "env.sync", "env.read") and FaultyBackend
/// ("backend.put", "backend.delete", "backend.get") so backend- and
/// env-level faults are armed through one vocabulary.
class FaultSchedule {
 public:
  /// Arms `point`: the first `after` hits pass, then `count` hits fail
  /// with `status` (count < 0 = fail forever). Re-arming replaces.
  void Arm(const std::string& point, std::uint64_t after, int count,
           Status status);
  void Disarm(const std::string& point);
  void Clear();

  /// Instrumented code calls this once per operation at `point`; returns
  /// the armed failure when it fires, OK otherwise.
  Status Check(const std::string& point);

  /// Operations seen at `point` (armed points only; 0 if never armed).
  std::uint64_t HitCount(const std::string& point) const;
  /// Total failures injected across all points.
  std::uint64_t injected_failures() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// One-line summary of armed points + counters (failure reproduction).
  std::string Describe() const;

 private:
  struct Arming {
    std::uint64_t after = 0;
    int count = 0;  ///< remaining failures; < 0 = unbounded
    Status status;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Arming> points_;
  std::atomic<std::uint64_t> injected_{0};
};

class FaultEnv final : public Env {
 public:
  static constexpr std::uint64_t kUnlimited = ~0ull;

  explicit FaultEnv(std::uint64_t seed = 1);

  // ------------------------------------------------------ fault arming ---

  /// The shared injection-point schedule (see FaultSchedule).
  FaultSchedule& schedule() { return schedule_; }

  /// After `ops` more counted operations (append, sync, rename, remove,
  /// mkdir), power is cut: an append that crosses the budget tears (a
  /// seeded-random prefix of its bytes lands), a metadata op applies whole,
  /// and every later IO fails with IoError until CrashAndRecoverFs().
  /// 0 disarms.
  void CutPowerAfterOps(std::uint64_t ops);

  /// Appends past `bytes` total written bytes fail with Status::NoSpace
  /// (a deterministic full disk). kUnlimited disarms.
  void SetNoSpaceByteBudget(std::uint64_t bytes);

  /// The next append writes only a seeded-random strict prefix of its
  /// payload, then fails with IoError — a torn mid-record write.
  void TearNextAppend();

  // ------------------------------------------------ power-cut lifecycle ---

  bool PowerIsCut() const { return power_cut_.load(std::memory_order_acquire); }

  enum class CrashMode {
    kDropUnsynced,      ///< only synced bytes survive (worst case)
    kKeepRandomPrefix,  ///< plus a seeded-random prefix of the unsynced
                        ///< suffix per file (torn tails for replay)
  };

  /// Simulates the machine rebooting after a power loss: unsynced bytes
  /// are discarded per `mode`, power is restored and the cut/no-space
  /// budgets are disarmed (the schedule stays armed; Clear() it
  /// explicitly). Open handles keep working against the surviving state.
  void CrashAndRecoverFs(CrashMode mode = CrashMode::kDropUnsynced);

  // ------------------------------------------------------ observability ---

  /// Counted operations performed — appends, syncs and metadata ops (the
  /// clock the cut budget runs on).
  std::uint64_t OpCount() const { return op_count_.load(std::memory_order_relaxed); }
  std::uint64_t SyncCount() const { return sync_count_.load(std::memory_order_relaxed); }
  std::uint64_t TotalBytesWritten() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  /// Bytes of `path` that would survive a power cut right now.
  std::uint64_t DurableBytes(const std::string& path) const;
  /// Bytes of `path` written (synced or not); 0 if missing.
  std::uint64_t WrittenBytes(const std::string& path) const;

  /// Seed + budgets + op counters + schedule, for failure output.
  std::string DescribeSchedule() const;

  // ---------------------------------------------------------------- Env ---

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursive(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status FileSize(const std::string& path, std::uint64_t* size) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  /// One shadow file. Contents + durable watermark, both under the env
  /// mutex. shared_ptr so open handles survive removes/renames (POSIX
  /// unlink semantics) and crashes.
  struct FileNode {
    std::string data;
    std::uint64_t synced = 0;
  };

  Status FailIfPowerCut() const;
  /// Accounts one write/sync op against the power-cut budget. Returns true
  /// if this op crosses it (the caller then tears and fails).
  bool ConsumeOpForCut();

  const std::uint64_t seed_;
  mutable std::mutex mutex_;
  Xorshift rng_;                                       ///< under mutex_
  std::map<std::string, std::shared_ptr<FileNode>> files_;  ///< under mutex_
  std::set<std::string> dirs_;                         ///< under mutex_
  FaultSchedule schedule_;
  std::atomic<bool> power_cut_{false};
  std::atomic<std::uint64_t> cut_after_ops_{0};  ///< 0 = disarmed
  std::atomic<std::uint64_t> no_space_budget_{kUnlimited};
  std::atomic<bool> tear_next_append_{false};
  std::atomic<std::uint64_t> op_count_{0};
  std::atomic<std::uint64_t> sync_count_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace streamsi

#endif  // STREAMSI_COMMON_FAULT_ENV_H_
