// Zipfian key generator following J. Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD 1994) — the generator the
// paper cites for its contention sweep (§5.1, reference [7]).
//
// The skew parameter theta matches the paper's usage: theta = 0 is uniform;
// the paper notes theta = 2.9 makes ~82 % of accesses hit the same key.

#ifndef STREAMSI_COMMON_ZIPF_H_
#define STREAMSI_COMMON_ZIPF_H_

#include <cstdint>

#include "common/random.h"

namespace streamsi {

/// Zipfian-distributed generator over [0, n).
///
/// Uses the closed-form inverse-CDF approximation from Gray et al. '94.
/// Deterministic for a fixed seed. Rank 0 is the hottest item; callers that
/// want to avoid cross-run correlation should scramble the output
/// (e.g. FNV hash mod n), as ScrambledNext() does.
class ZipfianGenerator {
 public:
  /// @param n      number of distinct items (> 0)
  /// @param theta  skew; 0 = uniform, larger = more skewed
  /// @param seed   RNG seed
  ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed = 42);

  /// Next rank in [0, n); rank 0 is the most popular.
  std::uint64_t Next();

  /// Next item with ranks scattered over the key space (FNV-1a scramble).
  std::uint64_t ScrambledNext();

  double theta() const { return theta_; }
  std::uint64_t n() const { return n_; }

  /// Probability mass of the hottest item (diagnostic; the paper reports
  /// theta=2.9 => ~82 % on one key).
  double HottestProbability() const;

 private:
  double Zeta(std::uint64_t n, double theta) const;

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
  Xorshift rng_;
};

}  // namespace streamsi

#endif  // STREAMSI_COMMON_ZIPF_H_
