// AtomicSlotMask: lock-free allocation of up to 64 slots out of a single
// 64-bit word, updated with CAS.
//
// The paper (§4.1, footnote 2) manages both the free version slots of an
// MVCC object (UsedSlots) and the active-transaction table entries with
// "a 64-bit integer, which is updated by CAS operations". This class is that
// integer.

#ifndef STREAMSI_COMMON_SLOT_MASK_H_
#define STREAMSI_COMMON_SLOT_MASK_H_

#include <atomic>
#include <bit>
#include <cstdint>

namespace streamsi {

/// Lock-free bit-vector slot allocator over a single 64-bit word.
class AtomicSlotMask {
 public:
  static constexpr int kMaxSlots = 64;
  static constexpr int kNoSlot = -1;

  explicit AtomicSlotMask(std::uint64_t initial = 0) : bits_(initial) {}

  /// Atomically claims the lowest free slot among the first `capacity` bits.
  /// Returns the slot index, or kNoSlot if all `capacity` slots are taken.
  int Acquire(int capacity = kMaxSlots) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t limit =
          capacity >= kMaxSlots ? ~0ull : ((1ull << capacity) - 1);
      const std::uint64_t free = ~cur & limit;
      if (free == 0) return kNoSlot;
      const int slot = std::countr_zero(free);
      const std::uint64_t want = cur | (1ull << slot);
      if (bits_.compare_exchange_weak(cur, want, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return slot;
      }
      // cur was refreshed by the failed CAS; retry.
    }
  }

  /// Atomically claims a specific slot. Returns false if already taken.
  bool AcquireSlot(int slot) {
    const std::uint64_t mask = 1ull << slot;
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    do {
      if (cur & mask) return false;
    } while (!bits_.compare_exchange_weak(cur, cur | mask,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
    return true;
  }

  /// Releases a previously acquired slot.
  void Release(int slot) {
    bits_.fetch_and(~(1ull << slot), std::memory_order_acq_rel);
  }

  bool IsSet(int slot) const {
    return (bits_.load(std::memory_order_acquire) >> slot) & 1u;
  }

  /// Number of occupied slots.
  int Count() const {
    return std::popcount(bits_.load(std::memory_order_acquire));
  }

  std::uint64_t Raw() const { return bits_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> bits_;
};

}  // namespace streamsi

#endif  // STREAMSI_COMMON_SLOT_MASK_H_
