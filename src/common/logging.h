// Minimal leveled logging to stderr. Off by default above WARN to keep
// benchmark output clean; set streamsi::SetLogLevel() to change.

#ifndef STREAMSI_COMMON_LOGGING_H_
#define STREAMSI_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace streamsi {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace internal {
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
inline std::mutex g_log_mutex;
}  // namespace internal

inline void SetLogLevel(LogLevel level) {
  internal::g_log_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_log_level.load(std::memory_order_relaxed);
}

inline void LogMessage(LogLevel level, const std::string& msg) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> guard(internal::g_log_mutex);
  std::fprintf(stderr, "[streamsi %s] %s\n",
               kNames[static_cast<int>(level)], msg.c_str());
}

}  // namespace streamsi

#define STREAMSI_LOG(level, expr)                                   \
  do {                                                              \
    if (::streamsi::LogEnabled(level)) {                            \
      std::ostringstream _oss;                                      \
      _oss << expr;                                                 \
      ::streamsi::LogMessage(level, _oss.str());                    \
    }                                                               \
  } while (0)

#define STREAMSI_DEBUG(expr) STREAMSI_LOG(::streamsi::LogLevel::kDebug, expr)
#define STREAMSI_INFO(expr) STREAMSI_LOG(::streamsi::LogLevel::kInfo, expr)
#define STREAMSI_WARN(expr) STREAMSI_LOG(::streamsi::LogLevel::kWarn, expr)
#define STREAMSI_ERROR(expr) STREAMSI_LOG(::streamsi::LogLevel::kError, expr)

#endif  // STREAMSI_COMMON_LOGGING_H_
