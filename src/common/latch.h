// Lightweight synchronization primitives.
//
// §4.2: "To synchronize the actual access of MVCC blocks a lightweight
// locking strategy with read-write locks (latches) can be used." RwLatch is
// that latch; SpinLock is used for tiny critical sections elsewhere.

#ifndef STREAMSI_COMMON_LATCH_H_
#define STREAMSI_COMMON_LATCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace streamsi {

/// Busy-wait hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Adaptive backoff: spin briefly, then yield the core. Pure pause-spinning
/// wastes whole scheduler quanta when threads outnumber cores (the lock
/// holder cannot run while the waiter spins), so longer waits must yield.
class SpinBackoff {
 public:
  void Pause() {
    if (++spins_ < kSpinLimit) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

 private:
  static constexpr int kSpinLimit = 64;
  int spins_ = 0;
};

/// Minimal test-and-test-and-set spinlock. Satisfies Lockable.
class SpinLock {
 public:
  void lock() {
    SpinBackoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) backoff.Pause();
    }
  }
  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Reader–writer latch: single atomic word, writer-preferring enough for
/// short critical sections (no queueing, spins).
///
/// State encoding: kWriterBit set => writer holds it; lower bits count
/// readers.
class RwLatch {
 public:
  void LockShared() {
    SpinBackoff backoff;
    for (;;) {
      std::uint32_t cur = state_.load(std::memory_order_relaxed);
      if (!(cur & kWriterBit)) {
        if (state_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
      } else {
        backoff.Pause();
      }
    }
  }

  bool TryLockShared() {
    std::uint32_t cur = state_.load(std::memory_order_relaxed);
    while (!(cur & kWriterBit)) {
      if (state_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

  void LockExclusive() {
    // Claim the writer bit, then wait for readers to drain.
    SpinBackoff backoff;
    for (;;) {
      std::uint32_t cur = state_.load(std::memory_order_relaxed);
      if (!(cur & kWriterBit) &&
          state_.compare_exchange_weak(cur, cur | kWriterBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      backoff.Pause();
    }
    SpinBackoff drain;
    while (state_.load(std::memory_order_acquire) != kWriterBit) {
      drain.Pause();
    }
  }

  bool TryLockExclusive() {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriterBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void UnlockExclusive() {
    state_.fetch_and(~kWriterBit, std::memory_order_release);
  }

 private:
  static constexpr std::uint32_t kWriterBit = 0x80000000u;
  std::atomic<std::uint32_t> state_{0};
};

/// RAII shared lock over RwLatch.
class SharedGuard {
 public:
  explicit SharedGuard(RwLatch& latch) : latch_(&latch) {
    latch_->LockShared();
  }
  ~SharedGuard() { latch_->UnlockShared(); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  RwLatch* latch_;
};

/// RAII exclusive lock over RwLatch.
class ExclusiveGuard {
 public:
  explicit ExclusiveGuard(RwLatch& latch) : latch_(&latch) {
    latch_->LockExclusive();
  }
  ~ExclusiveGuard() { latch_->UnlockExclusive(); }
  ExclusiveGuard(const ExclusiveGuard&) = delete;
  ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

 private:
  RwLatch* latch_;
};

}  // namespace streamsi

#endif  // STREAMSI_COMMON_LATCH_H_
