// Thin POSIX filesystem wrappers used by the storage layer (WAL, SSTables,
// manifest, group-commit records). All operations report failures through
// Status rather than exceptions.

#ifndef STREAMSI_COMMON_ENV_H_
#define STREAMSI_COMMON_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamsi {

/// Append-only file handle with optional fsync-on-sync.
class WritableFile {
 public:
  WritableFile() = default;
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Opens (creating/truncating if `truncate`) the file for appending.
  Status Open(const std::string& path, bool truncate = false);
  Status Append(std::string_view data);
  /// Flushes userspace buffers to the OS.
  Status Flush();
  /// fsync(2): durably persists the file contents.
  Status Sync();
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  std::uint64_t size() const { return size_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string buffer_;  // small user-space write buffer
  std::string path_;
};

/// Random-access read-only file.
class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  Status Open(const std::string& path);
  /// Reads exactly `n` bytes at `offset` into `out` (resized).
  Status Read(std::uint64_t offset, std::size_t n, std::string* out) const;
  Status Close();

  std::uint64_t size() const { return size_; }
  bool is_open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

/// Filesystem helpers.
namespace fsutil {

Status CreateDirIfMissing(const std::string& path);
Status RemoveFile(const std::string& path);
/// Recursively removes a directory tree (used by tests/benches).
Status RemoveDirRecursive(const std::string& path);
bool FileExists(const std::string& path);
/// Size of `path` in bytes (error if missing).
Status FileSize(const std::string& path, std::uint64_t* size);
Status ListDir(const std::string& path, std::vector<std::string>* names);
/// Appends the numeric middle of every entry of `dir` shaped
/// <prefix><digits><suffix> (digits of any length, no other characters) to
/// `numbers`, unsorted. A missing directory appends nothing. Shared by the
/// WAL/log segment-chain discoveries.
Status ListNumberedFiles(const std::string& dir, const std::string& prefix,
                         const std::string& suffix,
                         std::vector<std::uint64_t>* numbers);
Status ReadFileToString(const std::string& path, std::string* out);
/// Atomic replace: write tmp + fsync + rename (crash-safe publication).
Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view contents);
Status RenameFile(const std::string& from, const std::string& to);
/// fsyncs the directory containing `path` so renames are durable.
Status SyncDir(const std::string& dir);

}  // namespace fsutil

}  // namespace streamsi

#endif  // STREAMSI_COMMON_ENV_H_
