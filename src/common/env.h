// Env: the injectable storage environment. Every byte of IO in the engine
// (WAL, SSTables, manifest, group-commit log, state catalog) flows through
// an Env so that tests can substitute a hostile filesystem (FaultEnv:
// torn writes, ENOSPC, lying fsyncs, simulated power cuts) for the real
// POSIX one. All operations report failures through Status, never
// exceptions.
//
// Cost model (do not regress): one virtual call per *file operation*, never
// per commit — the WAL batches appends, so a group-commit batch pays one
// Append + one Sync regardless of how many commits rode in it.

#ifndef STREAMSI_COMMON_ENV_H_
#define STREAMSI_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamsi {

/// Append-only file handle with optional fsync-on-sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// Flushes userspace buffers to the OS (bytes survive a process crash,
  /// not a power cut).
  virtual Status Flush() = 0;
  /// fsync(2): durably persists the file contents (power-cut safe).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  /// Logical size: everything appended so far (buffered bytes included).
  virtual std::uint64_t size() const = 0;
};

/// Random-access read-only file.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads exactly `n` bytes at `offset` into `out` (resized).
  virtual Status Read(std::uint64_t offset, std::size_t n,
                      std::string* out) const = 0;
  virtual Status Close() = 0;

  virtual std::uint64_t size() const = 0;
};

/// Abstract filesystem: file factory + directory operations. Implementations
/// must be thread-safe (the engine calls in from committers, the background
/// flush worker and the checkpointer concurrently).
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never destroyed).
  static Env* Default();

  /// Opens `path` for appending, creating it if missing (truncating first
  /// when `truncate`).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  /// Removing a missing file is OK (idempotent).
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Recursively removes a directory tree (used by tests/benches).
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Size of `path` in bytes (error if missing).
  virtual Status FileSize(const std::string& path, std::uint64_t* size) = 0;
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* names) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  /// fsyncs the directory containing `path` so renames are durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  // Conveniences built on the primitives above (non-virtual: every
  // environment inherits correct behavior, including fault injection,
  // because they bottom out in the virtual ops).

  /// Appends the numeric middle of every entry of `dir` shaped
  /// <prefix><digits><suffix> (digits of any length, no other characters) to
  /// `numbers`, unsorted. A missing directory appends nothing; any OTHER
  /// listing failure propagates — recovery builds its replay chain from
  /// this result, and treating an unreadable directory as empty would
  /// silently drop every segment's committed records.
  Status ListNumberedFiles(const std::string& dir, const std::string& prefix,
                           const std::string& suffix,
                           std::vector<std::uint64_t>* numbers);
  Status ReadFileToString(const std::string& path, std::string* out);
  /// Atomic replace: write tmp + fsync + rename (crash-safe publication).
  Status WriteStringToFileAtomic(const std::string& path,
                                 std::string_view contents);
};

/// Filesystem helpers over Env::Default(). Engine code takes an Env* and
/// calls it directly; these wrappers keep tests, benches and examples —
/// which always mean the real filesystem — terse.
namespace fsutil {

Status CreateDirIfMissing(const std::string& path);
Status RemoveFile(const std::string& path);
Status RemoveDirRecursive(const std::string& path);
bool FileExists(const std::string& path);
Status FileSize(const std::string& path, std::uint64_t* size);
Status ListDir(const std::string& path, std::vector<std::string>* names);
Status ListNumberedFiles(const std::string& dir, const std::string& prefix,
                         const std::string& suffix,
                         std::vector<std::uint64_t>* numbers);
Status ReadFileToString(const std::string& path, std::string* out);
Status WriteStringToFileAtomic(const std::string& path,
                               std::string_view contents);
Status RenameFile(const std::string& from, const std::string& to);
Status SyncDir(const std::string& dir);

}  // namespace fsutil

}  // namespace streamsi

#endif  // STREAMSI_COMMON_ENV_H_
