#include "common/zipf.h"

#include <cmath>

namespace streamsi {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta,
                                   std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // theta == 1 makes the Gray et al. formulas singular (alpha = 1/(1-theta));
  // nudge it the way YCSB-style implementations do.
  if (theta_ == 1.0) theta_ = 0.99999;
  zetan_ = Zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - Zeta(2, theta_) / zetan_);
}

double ZipfianGenerator::Zeta(std::uint64_t n, double theta) const {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfianGenerator::Next() {
  if (theta_ == 0.0) return rng_.Uniform(n_);
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const double v =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t rank = static_cast<std::uint64_t>(v);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

std::uint64_t ZipfianGenerator::ScrambledNext() {
  const std::uint64_t rank = Next();
  // FNV-1a 64-bit scramble to decorrelate rank from key id.
  std::uint64_t h = 14695981039346656037ull;
  std::uint64_t x = rank;
  for (int i = 0; i < 8; ++i) {
    h ^= x & 0xFF;
    h *= 1099511628211ull;
    x >>= 8;
  }
  return h % n_;
}

double ZipfianGenerator::HottestProbability() const {
  if (theta_ == 0.0) return 1.0 / static_cast<double>(n_);
  return 1.0 / zetan_;
}

}  // namespace streamsi
