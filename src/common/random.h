// Fast pseudo-random number generation for workload generators.

#ifndef STREAMSI_COMMON_RANDOM_H_
#define STREAMSI_COMMON_RANDOM_H_

#include <cstdint>

namespace streamsi {

/// xorshift128+ generator: fast, decent quality, deterministic per seed.
/// Not cryptographically secure; intended for benchmarks and tests.
class Xorshift {
 public:
  explicit Xorshift(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to avoid poor low-entropy seeds.
    auto splitmix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    s0_ = splitmix();
    s1_ = splitmix();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t Next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t Uniform(std::uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace streamsi

#endif  // STREAMSI_COMMON_RANDOM_H_
