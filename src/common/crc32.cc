#include "common/crc32.h"

#include <array>

namespace streamsi {
namespace {

// Table-driven CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t n, std::uint32_t init) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~init;
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace streamsi
