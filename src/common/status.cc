#include "common/status.h"

namespace streamsi {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNoSpace:
      return "NoSpace";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeToString(code());
  if (!message().empty()) {
    result += ": ";
    result += message();
  }
  return result;
}

}  // namespace streamsi
