#include "common/fault_env.h"

#include <algorithm>
#include <sstream>

namespace streamsi {

// ---------------------------------------------------------- FaultSchedule ---

void FaultSchedule::Arm(const std::string& point, std::uint64_t after,
                        int count, Status status) {
  std::lock_guard<std::mutex> lock(mutex_);
  Arming arming;
  arming.after = after;
  arming.count = count;
  arming.status = std::move(status);
  points_[point] = std::move(arming);
}

void FaultSchedule::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.erase(point);
}

void FaultSchedule::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
}

Status FaultSchedule::Check(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  Arming& arming = it->second;
  const std::uint64_t hit = arming.hits++;
  if (hit < arming.after) return Status::OK();
  if (arming.count == 0) return Status::OK();  // exhausted
  if (arming.count > 0) --arming.count;
  ++arming.fired;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return arming.status;
}

std::uint64_t FaultSchedule::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::string FaultSchedule::Describe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "schedule{";
  bool first = true;
  for (const auto& [point, arming] : points_) {
    if (!first) out << ", ";
    first = false;
    out << point << ": after=" << arming.after << " remaining=" << arming.count
        << " hits=" << arming.hits << " fired=" << arming.fired << " -> "
        << StatusCodeToString(arming.status.code());
  }
  out << "} injected=" << injected_.load(std::memory_order_relaxed);
  return out.str();
}

// --------------------------------------------------------------- FaultEnv ---

namespace {

Status PowerCutError() {
  return Status::IoError("simulated power cut");
}

}  // namespace

/// Writable handle over a shadow FileNode. All mutation happens under the
/// env mutex; fault checks run in the order a real kernel would surface
/// them: power state, op accounting, armed faults, disk-full, then data.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultEnv* env, std::string path,
                    std::shared_ptr<FaultEnv::FileNode> node)
      : env_(env), path_(std::move(path)), node_(std::move(node)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    if (closed_) return Status::IoError("append to closed file");
    STREAMSI_RETURN_NOT_OK(env_->FailIfPowerCut());
    env_->op_count_.fetch_add(1, std::memory_order_relaxed);
    if (env_->ConsumeOpForCut()) {
      // Power dies mid-write: an arbitrary prefix reaches the disk cache.
      const std::uint64_t keep =
          data.empty() ? 0 : env_->rng_.Uniform(data.size() + 1);
      node_->data.append(data.data(), keep);
      env_->bytes_written_.fetch_add(keep, std::memory_order_relaxed);
      return PowerCutError();
    }
    STREAMSI_RETURN_NOT_OK(env_->schedule_.Check("env.append"));
    if (env_->tear_next_append_.exchange(false,
                                         std::memory_order_acq_rel)) {
      // Torn write: a strict prefix lands, then the write errors out.
      const std::uint64_t keep =
          data.empty() ? 0 : env_->rng_.Uniform(data.size());
      node_->data.append(data.data(), keep);
      env_->bytes_written_.fetch_add(keep, std::memory_order_relaxed);
      return Status::IoError("simulated torn write to " + path_);
    }
    const std::uint64_t budget =
        env_->no_space_budget_.load(std::memory_order_relaxed);
    if (budget != FaultEnv::kUnlimited) {
      const std::uint64_t written =
          env_->bytes_written_.load(std::memory_order_relaxed);
      if (written + data.size() > budget) {
        // Like a real full disk: whatever fits still lands.
        const std::uint64_t keep = budget > written ? budget - written : 0;
        node_->data.append(data.data(), keep);
        env_->bytes_written_.fetch_add(keep, std::memory_order_relaxed);
        return Status::NoSpace("simulated disk full writing " + path_);
      }
    }
    node_->data.append(data.data(), data.size());
    env_->bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
    return Status::OK();
  }

  Status Flush() override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    if (closed_) return Status::IoError("flush closed file");
    return env_->FailIfPowerCut();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    if (closed_) return Status::IoError("sync closed file");
    STREAMSI_RETURN_NOT_OK(env_->FailIfPowerCut());
    env_->op_count_.fetch_add(1, std::memory_order_relaxed);
    env_->sync_count_.fetch_add(1, std::memory_order_relaxed);
    // A failed or interrupted sync must not advance the durable watermark.
    if (env_->ConsumeOpForCut()) return PowerCutError();
    STREAMSI_RETURN_NOT_OK(env_->schedule_.Check("env.sync"));
    node_->synced = node_->data.size();
    return Status::OK();
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    closed_ = true;
    return Status::OK();
  }

  std::uint64_t size() const override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    return node_->data.size();
  }

 private:
  FaultEnv* env_;
  const std::string path_;
  std::shared_ptr<FaultEnv::FileNode> node_;
  bool closed_ = false;
};

/// Read-only handle over a shadow FileNode. Reads see the node's CURRENT
/// contents (post-crash truncation included), matching an fd that survives
/// the file shrinking underneath it.
class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultEnv* env,
                        std::shared_ptr<FaultEnv::FileNode> node)
      : env_(env), node_(std::move(node)) {}

  Status Read(std::uint64_t offset, std::size_t n,
              std::string* out) const override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    STREAMSI_RETURN_NOT_OK(env_->FailIfPowerCut());
    STREAMSI_RETURN_NOT_OK(env_->schedule_.Check("env.read"));
    if (offset + n > node_->data.size()) {
      return Status::IoError("short read");
    }
    out->assign(node_->data, offset, n);
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

  std::uint64_t size() const override {
    std::lock_guard<std::mutex> lock(env_->mutex_);
    return node_->data.size();
  }

 private:
  FaultEnv* env_;
  std::shared_ptr<FaultEnv::FileNode> node_;
};

FaultEnv::FaultEnv(std::uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultEnv::CutPowerAfterOps(std::uint64_t ops) {
  cut_after_ops_.store(ops, std::memory_order_relaxed);
}

void FaultEnv::SetNoSpaceByteBudget(std::uint64_t bytes) {
  if (bytes != kUnlimited) {
    // The budget gates TOTAL bytes written; start counting from here.
    bytes += bytes_written_.load(std::memory_order_relaxed);
  }
  no_space_budget_.store(bytes, std::memory_order_relaxed);
}

void FaultEnv::TearNextAppend() {
  tear_next_append_.store(true, std::memory_order_release);
}

void FaultEnv::CrashAndRecoverFs(CrashMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [path, node] : files_) {
    if (node->data.size() <= node->synced) continue;
    std::uint64_t keep = node->synced;
    if (mode == CrashMode::kKeepRandomPrefix) {
      // Some unsynced page-cache pages happened to land before the cut.
      keep += rng_.Uniform(node->data.size() - node->synced + 1);
    }
    node->data.resize(keep);
    node->synced = std::min(node->synced, keep);
  }
  power_cut_.store(false, std::memory_order_release);
  cut_after_ops_.store(0, std::memory_order_relaxed);
  no_space_budget_.store(kUnlimited, std::memory_order_relaxed);
  tear_next_append_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultEnv::DurableBytes(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second->synced;
}

std::uint64_t FaultEnv::WrittenBytes(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second->data.size();
}

std::string FaultEnv::DescribeSchedule() const {
  std::ostringstream out;
  out << "FaultEnv{seed=" << seed_
      << " ops=" << op_count_.load(std::memory_order_relaxed)
      << " syncs=" << sync_count_.load(std::memory_order_relaxed)
      << " bytes=" << bytes_written_.load(std::memory_order_relaxed)
      << " power_cut=" << (PowerIsCut() ? "yes" : "no")
      << " cut_after=" << cut_after_ops_.load(std::memory_order_relaxed)
      << " " << schedule_.Describe() << "}";
  return out.str();
}

Status FaultEnv::FailIfPowerCut() const {
  if (power_cut_.load(std::memory_order_acquire)) return PowerCutError();
  return Status::OK();
}

bool FaultEnv::ConsumeOpForCut() {
  std::uint64_t remaining = cut_after_ops_.load(std::memory_order_relaxed);
  if (remaining == 0) return false;
  cut_after_ops_.store(remaining - 1, std::memory_order_relaxed);
  if (remaining == 1) {
    power_cut_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

Result<std::unique_ptr<WritableFile>> FaultEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  auto& node = files_[path];
  if (node == nullptr) node = std::make_shared<FileNode>();
  if (truncate) {
    node->data.clear();
    node->synced = 0;
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, path, node));
}

Result<std::unique_ptr<RandomAccessFile>> FaultEnv::NewRandomAccessFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("open " + path + ": no such file");
  }
  return std::unique_ptr<RandomAccessFile>(
      new FaultRandomAccessFile(this, it->second));
}

Status FaultEnv::CreateDirIfMissing(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  // Directory creation is a metadata write: it counts against the power-cut
  // op budget like Append/Sync. When the cut lands here the mkdir itself
  // reached the journal (applied-then-die, matching Append's partial-effect
  // model) but the caller sees the failure.
  op_count_.fetch_add(1, std::memory_order_relaxed);
  if (ConsumeOpForCut()) {
    dirs_.insert(path);
    return PowerCutError();
  }
  dirs_.insert(path);
  return Status::OK();
}

Status FaultEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  // unlink(2) is a power-cut-able metadata op: checkpoint prune and LSM
  // segment deletes must be coverable by the torture harness. Budget
  // crossing applies the unlink (it reached the disk as the power died),
  // then reports the cut.
  op_count_.fetch_add(1, std::memory_order_relaxed);
  if (ConsumeOpForCut()) {
    files_.erase(path);
    return PowerCutError();
  }
  STREAMSI_RETURN_NOT_OK(schedule_.Check("env.remove"));
  files_.erase(path);  // idempotent, like unlink + ENOENT tolerance
  return Status::OK();
}

Status FaultEnv::RemoveDirRecursive(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  // Counted as ONE op (tests/benches tear down whole trees at once).
  op_count_.fetch_add(1, std::memory_order_relaxed);
  const bool cut = ConsumeOpForCut();
  if (!cut) STREAMSI_RETURN_NOT_OK(schedule_.Check("env.remove"));
  const std::string prefix = path + "/";
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = dirs_.begin(); it != dirs_.end();) {
    if (*it == path || it->compare(0, prefix.size(), prefix) == 0) {
      it = dirs_.erase(it);
    } else {
      ++it;
    }
  }
  return cut ? PowerCutError() : Status::OK();
}

bool FaultEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultEnv::FileSize(const std::string& path, std::uint64_t* size) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IoError("stat " + path);
  *size = it->second->data.size();
  return Status::OK();
}

Status FaultEnv::ListDir(const std::string& path,
                         std::vector<std::string>* names) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  names->clear();
  if (dirs_.count(path) == 0) return Status::IoError("opendir " + path);
  const std::string prefix = path + "/";
  auto add_child = [&](const std::string& full) {
    if (full.compare(0, prefix.size(), prefix) != 0) return;
    std::string rest = full.substr(prefix.size());
    const auto slash = rest.find('/');
    if (slash != std::string::npos) rest.resize(slash);  // direct child only
    if (!rest.empty() &&
        std::find(names->begin(), names->end(), rest) == names->end()) {
      names->push_back(rest);
    }
  };
  for (const auto& [file_path, node] : files_) add_child(file_path);
  for (const auto& dir_path : dirs_) add_child(dir_path);
  return Status::OK();
}

Status FaultEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  // rename(2) counts against the power-cut budget (manifest/atomic-write
  // publications are exactly the windows the torture harness wants to hit).
  // A budget crossing applies the rename — it is atomic, so either it
  // reached the disk whole or the caller's retry finds `from` intact; we
  // model the "landed, then the lights went out" half.
  op_count_.fetch_add(1, std::memory_order_relaxed);
  const bool cut = ConsumeOpForCut();
  if (!cut) STREAMSI_RETURN_NOT_OK(schedule_.Check("env.rename"));
  auto it = files_.find(from);
  if (it == files_.end()) {
    return cut ? PowerCutError() : Status::IoError("rename " + from);
  }
  // Modeled as atomic AND durable (the engine follows every publishing
  // rename with SyncDir, so the stricter model matches what it relies on).
  files_[to] = it->second;
  files_.erase(it);
  return cut ? PowerCutError() : Status::OK();
}

Status FaultEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  STREAMSI_RETURN_NOT_OK(FailIfPowerCut());
  (void)dir;
  return Status::OK();
}

}  // namespace streamsi
