// Status and Result<T>: exception-free error handling in the RocksDB style.
//
// All fallible operations in streamsi return a Status (or a Result<T> that
// couples a Status with a value). Statuses are cheap to copy for the OK case
// (no allocation) and carry a code plus a context message otherwise.

#ifndef STREAMSI_COMMON_STATUS_H_
#define STREAMSI_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace streamsi {

/// Error category for a failed operation.
enum class StatusCode : unsigned char {
  kOk = 0,
  kNotFound = 1,        ///< Key or object does not exist (or is not visible).
  kConflict = 2,        ///< Write-write conflict (first-committer-wins loser).
  kAborted = 3,         ///< Transaction was aborted (by user or protocol).
  kBusy = 4,            ///< Lock could not be acquired (wait-die victim etc.).
  kInvalidArgument = 5, ///< Caller passed something nonsensical.
  kIoError = 6,         ///< Filesystem-level failure.
  kCorruption = 7,      ///< Checksum mismatch or malformed on-disk data.
  kNotSupported = 8,    ///< Operation not implemented for this configuration.
  kResourceExhausted = 9, ///< Out of slots (versions, transactions, ...).
  kTimedOut = 10,       ///< Deadline exceeded waiting for a resource.
  kUnavailable = 11,    ///< Service degraded (e.g. read-only mode); retry
                        ///< later or against a healthy replica.
  kNoSpace = 12,        ///< Storage device out of space (ENOSPC/EDQUOT).
};

/// Human-readable name of a status code ("Ok", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// The OK status is represented by a null state pointer, so returning and
/// copying `Status::OK()` never allocates.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Conflict(std::string_view msg = "") {
    return Status(StatusCode::kConflict, msg);
  }
  static Status Aborted(std::string_view msg = "") {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(StatusCode::kBusy, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status IoError(std::string_view msg = "") {
    return Status(StatusCode::kIoError, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status ResourceExhausted(std::string_view msg = "") {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status TimedOut(std::string_view msg = "") {
    return Status(StatusCode::kTimedOut, msg);
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status NoSpace(std::string_view msg = "") {
    return Status(StatusCode::kNoSpace, msg);
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsConflict() const { return code() == StatusCode::kConflict; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsBusy() const { return code() == StatusCode::kBusy; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsNoSpace() const { return code() == StatusCode::kNoSpace; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  std::string_view message() const {
    return state_ == nullptr ? std::string_view() : state_->message;
  }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code() == other.code(); }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string_view msg)
      : state_(std::make_shared<State>(State{code, std::string(msg)})) {}

  // Shared so Status stays copyable without duplicating the message.
  std::shared_ptr<State> state_;
};

/// A value or the Status explaining why there is none.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error: `return Status::NotFound();`. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result from Status requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagate a non-OK Status to the caller.
#define STREAMSI_RETURN_NOT_OK(expr)             \
  do {                                           \
    ::streamsi::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace streamsi

#endif  // STREAMSI_COMMON_STATUS_H_
