// Little-endian fixed-width and varint encoding helpers for on-disk and
// in-table serialization (WAL records, SSTable blocks, MVCC objects).

#ifndef STREAMSI_COMMON_CODING_H_
#define STREAMSI_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace streamsi {

inline void PutFixed32(std::string* dst, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline std::uint32_t DecodeFixed32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t DecodeFixed64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Appends v as LEB128 varint (1–5 bytes).
inline void PutVarint32(std::string* dst, std::uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline void PutVarint64(std::string* dst, std::uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Parses a varint32 from [p, limit). Returns nullptr on malformed input,
/// otherwise the first byte past the varint.
inline const char* GetVarint32(const char* p, const char* limit,
                               std::uint32_t* value) {
  std::uint32_t result = 0;
  for (int shift = 0; shift <= 28 && p < limit; shift += 7) {
    const std::uint32_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7F) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

inline const char* GetVarint64(const char* p, const char* limit,
                               std::uint64_t* value) {
  std::uint64_t result = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    const std::uint64_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7F) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

/// Appends a length-prefixed string (varint32 length + bytes).
inline void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<std::uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

/// Parses a length-prefixed string. Returns nullptr on malformed input.
inline const char* GetLengthPrefixed(const char* p, const char* limit,
                                     std::string_view* value) {
  std::uint32_t len = 0;
  p = GetVarint32(p, limit, &len);
  if (p == nullptr || static_cast<std::size_t>(limit - p) < len) {
    return nullptr;
  }
  *value = std::string_view(p, len);
  return p + len;
}

}  // namespace streamsi

#endif  // STREAMSI_COMMON_CODING_H_
