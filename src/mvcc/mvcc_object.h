// MvccObject: the per-key multi-version container of the transactional
// table (paper §4.1, Figure 3).
//
// Each entry follows the classic MVCC layout <[cts, dts], value>: the commit
// timestamp (CTS) and deletion timestamp (DTS) delimit the lifetime of a
// value version. Free slots of the fixed version array are managed through a
// UsedSlots bit vector (a 64-bit word updated with CAS). Only *committed*
// versions ever enter an MvccObject — uncommitted changes live in the
// transaction's write set — so aborts never touch it and no undo is needed.
//
// Old versions are garbage-collected on demand: when a new version must be
// installed and no slot is free, versions no active transaction can see
// (dts <= OldestActiveVersion) are reclaimed (§4.1).
//
// Synchronization: structural mutation happens under the owning table's
// per-object latch (§4.2 "lightweight locking strategy with read-write
// locks"); the UsedSlots mask is CAS-maintained as in the paper.

#ifndef STREAMSI_MVCC_MVCC_OBJECT_H_
#define STREAMSI_MVCC_MVCC_OBJECT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/slot_mask.h"
#include "common/status.h"

namespace streamsi {

/// Lifetime header of one value version.
struct VersionHeader {
  Timestamp cts = kInfinityTs;  ///< commit timestamp (creation)
  Timestamp dts = kInfinityTs;  ///< deletion timestamp (kInfinityTs = alive)
};

/// Multi-version container for a single key.
class MvccObject {
 public:
  static constexpr int kDefaultCapacity = 8;

  explicit MvccObject(int capacity = kDefaultCapacity);

  MvccObject(MvccObject&& other) noexcept;
  MvccObject& operator=(MvccObject&&) = delete;
  MvccObject(const MvccObject&) = delete;

  /// Returns the version visible to a snapshot at `read_ts`
  /// (cts <= read_ts < dts). False if no visible version exists.
  bool GetVisible(Timestamp read_ts, std::string* value) const;

  /// CTS of the newest committed version (kInitialTs if none).
  Timestamp LatestCts() const;

  /// Timestamp of the newest committed *modification* — the max over all
  /// creation timestamps and finite deletion timestamps. This is what the
  /// First-Committer-Wins check must compare against: a committed delete
  /// modifies the key without installing a new version.
  Timestamp LatestModification() const;

  /// True if the newest version is a live (non-deleted) value.
  bool HasLiveVersion() const;

  /// Installs a new version committed at `commit_ts`; terminates the
  /// previously live version (its dts becomes commit_ts). When no slot is
  /// free, reclaims versions with dts <= oldest_active first; returns
  /// ResourceExhausted if still full (caller may retry with a larger
  /// oldest_active once readers finish).
  Status Install(std::string_view value, Timestamp commit_ts,
                 Timestamp oldest_active);

  /// Logically deletes the key at `commit_ts`: sets the live version's dts.
  /// NotFound if there is no live version.
  Status MarkDeleted(Timestamp commit_ts);

  /// Reclaims all versions invisible to every transaction with a snapshot
  /// >= oldest_active. Returns the number of reclaimed slots.
  int GarbageCollect(Timestamp oldest_active);

  /// Recovery: drops versions with cts > max_cts (their group commit never
  /// completed) and re-opens dts values pointing past max_cts. Returns the
  /// number of purged versions.
  int PurgeAfter(Timestamp max_cts);

  /// Number of occupied version slots.
  int VersionCount() const { return used_.Count(); }
  int capacity() const { return capacity_; }

  /// Serialization (persisted inside the base table as the value blob).
  void EncodeTo(std::string* out) const;
  static Result<MvccObject> Decode(std::string_view in, int capacity);

  /// Test/diagnostic access to raw headers of occupied slots.
  std::vector<VersionHeader> Headers() const;

 private:
  int FindVisibleSlot(Timestamp read_ts) const;
  int FindLiveSlot() const;

  int capacity_;
  AtomicSlotMask used_;
  std::vector<VersionHeader> headers_;
  std::vector<std::string> values_;
};

}  // namespace streamsi

#endif  // STREAMSI_MVCC_MVCC_OBJECT_H_
