// MvccObject: the per-key multi-version container of the transactional
// table (paper §4.1, Figure 3).
//
// Each entry follows the classic MVCC layout <[cts, dts], value>: the commit
// timestamp (CTS) and deletion timestamp (DTS) delimit the lifetime of a
// value version. Free slots of the fixed version array are managed through a
// UsedSlots bit vector (a 64-bit word updated with CAS). Only *committed*
// versions ever enter an MvccObject — uncommitted changes live in the
// transaction's write set — so aborts never touch it and no undo is needed.
//
// Old versions are garbage-collected on demand: when a new version must be
// installed and no slot is free, versions no active transaction can see
// (dts <= OldestActiveVersion) are reclaimed (§4.1).
//
// Capacity is adaptive: when on-demand GC frees nothing (a lagging reader
// pin keeps every version visible), Install replaces the slot array with a
// doubled copy — up to the caller's grow limit — instead of failing the
// write. The array is published with a release store and the superseded one
// retired through the EpochManager, exactly the bucket-table-growth
// discipline of the shard index: optimistic readers that loaded the old
// pointer finish their probe on a frozen array and the seqlock validation
// makes them retry.
//
// Synchronization — the seqlock read protocol ("readers mostly only access
// memory", §5.2):
//   * Mutators (Install / MarkDeleted / GarbageCollect / PurgeAfter) run
//     under the owning table's exclusive per-entry latch and additionally
//     bump the object's sequence number to an odd value for the duration of
//     the mutation (WriteSection).
//   * Optimistic readers (TryGetVisible and friends) never take the latch:
//     they read the sequence number, probe the version slots — every shared
//     field is an atomic, so there are no data races — and re-validate the
//     sequence number. An odd or changed sequence means a concurrent mutation
//     interfered; the caller retries (and may eventually fall back to the
//     shared latch for guaranteed progress).
//   * Value payloads are immutable heap buffers published with a release
//     store of the slot's value pointer. Replaced or reclaimed buffers are
//     handed to the EpochManager, so a reader inside an EpochGuard can
//     safely copy a buffer even if the slot was concurrently reused — the
//     sequence validation then rejects the read and the reader retries.

#ifndef STREAMSI_MVCC_MVCC_OBJECT_H_
#define STREAMSI_MVCC_MVCC_OBJECT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/slot_mask.h"
#include "common/status.h"

namespace streamsi {

/// Lifetime header of one value version.
struct VersionHeader {
  Timestamp cts = kInfinityTs;  ///< commit timestamp (creation)
  Timestamp dts = kInfinityTs;  ///< deletion timestamp (kInfinityTs = alive)
};

/// Multi-version container for a single key.
class MvccObject {
 public:
  static constexpr int kDefaultCapacity = 8;

  /// Outcome of one optimistic (latch-free) read attempt.
  enum class ReadResult {
    kHit,    ///< visible version found, *value filled
    kMiss,   ///< validated: no visible version exists
    kRetry,  ///< concurrent mutation interfered; try again
  };

  explicit MvccObject(int capacity = kDefaultCapacity);
  ~MvccObject();

  MvccObject(MvccObject&& other) noexcept;
  MvccObject& operator=(MvccObject&&) = delete;
  MvccObject(const MvccObject&) = delete;

  // ------------------------------------------------ optimistic read path ---
  // Latch-free seqlock reads. Caller must hold an EpochGuard (the value
  // buffer may be retired concurrently). kRetry means writer interference;
  // retry a bounded number of times, then fall back to the latched variants.

  /// One optimistic attempt at the snapshot-visibility rule
  /// (cts <= read_ts < dts).
  ReadResult TryGetVisible(Timestamp read_ts, std::string* value) const;

  /// One optimistic attempt at the newest *live* version (dts == inf) —
  /// the direct ReadLatest probe (no magic read_ts needed).
  ReadResult TryGetLatestLive(std::string* value) const;

  /// One optimistic attempt at LatestCts().
  ReadResult TryLatestCts(Timestamp* cts) const;

  // --------------------------------------------------- latched read path ---
  // Stable reads: caller must exclude mutators (shared per-entry latch).

  /// Returns the version visible to a snapshot at `read_ts`
  /// (cts <= read_ts < dts). False if no visible version exists.
  bool GetVisible(Timestamp read_ts, std::string* value) const;

  /// Newest live (non-deleted) version; false if none.
  bool GetLatestLive(std::string* value) const;

  /// CTS of the newest committed version (kInitialTs if none).
  Timestamp LatestCts() const;

  /// Timestamp of the newest committed *modification* — the max over all
  /// creation timestamps and finite deletion timestamps. This is what the
  /// First-Committer-Wins check must compare against: a committed delete
  /// modifies the key without installing a new version.
  Timestamp LatestModification() const;

  /// True if the newest version is a live (non-deleted) value.
  bool HasLiveVersion() const;

  // ----------------------------------------------------------- mutations ---
  // All mutators require the owning table's exclusive per-entry latch; they
  // bump the seqlock internally so optimistic readers notice.

  /// Installs a new version committed at `commit_ts`; terminates the
  /// previously live version (its dts becomes commit_ts). When no slot is
  /// free, reclaims versions with dts <= the GC watermark first; when that
  /// frees nothing, grows the slot array (doubled, up to `grow_limit`
  /// slots); returns ResourceExhausted only when full at the grow limit
  /// (caller may retry with a larger watermark once readers finish). A
  /// `grow_limit` at or below the current capacity disables growth.
  ///
  /// The watermark is LAZY: `floor` is resolved only when the version array
  /// is actually full — the common commit never pays the transaction-table
  /// scans behind it. Resolution happens before the seqlock write section
  /// opens (the caller's exclusive latch keeps the occupancy stable), so
  /// optimistic readers never spin behind a floor computation.
  Status Install(std::string_view value, Timestamp commit_ts, GcFloor& floor,
                 int grow_limit = 0);

  /// Eager-watermark convenience (tests, bulk load, recovery).
  Status Install(std::string_view value, Timestamp commit_ts,
                 Timestamp oldest_active, int grow_limit = 0) {
    GcFloor floor(oldest_active);
    return Install(value, commit_ts, floor, grow_limit);
  }

  /// Logically deletes the key at `commit_ts`: sets the live version's dts.
  /// NotFound if there is no live version.
  Status MarkDeleted(Timestamp commit_ts);

  /// Reclaims all versions invisible to every transaction with a snapshot
  /// >= oldest_active. Returns the number of reclaimed slots.
  int GarbageCollect(Timestamp oldest_active);

  /// Recovery: drops versions with cts > max_cts (their group commit never
  /// completed) and re-opens dts values pointing past max_cts. Returns the
  /// number of purged versions.
  int PurgeAfter(Timestamp max_cts);

  /// Recovery with exact commit knowledge: drops versions whose cts is
  /// beyond `covered_cts` AND not accepted by `is_committed`; a doomed dts
  /// re-opens its version (the superseding write is being purged). A plain
  /// watermark cannot express this — an aborted commit's cts can sit BELOW
  /// a later logged commit's, and only the exact record set tells them
  /// apart. Returns the number of purged versions.
  int PurgeUncommitted(Timestamp covered_cts,
                       const std::function<bool(Timestamp)>& is_committed);

  /// Number of occupied version slots.
  int VersionCount() const { return used_.Count(); }
  int capacity() const {
    return array_.load(std::memory_order_acquire)->capacity;
  }

  /// Serialization (persisted inside the base table as the value blob).
  void EncodeTo(std::string* out) const;
  /// Decodes a persisted blob. The version array is sized from the BLOB
  /// (the capacity recorded at encode time), raised to `min_capacity` when
  /// the blob is smaller — never truncated to a configured default, so a
  /// grown object recovers with every persisted version intact.
  static Result<MvccObject> Decode(std::string_view in, int min_capacity);

  /// Test/diagnostic access to raw headers of occupied slots.
  std::vector<VersionHeader> Headers() const;

 private:
  /// One version slot. cts/dts/value are individually atomic so optimistic
  /// readers race-freely observe them; logical consistency across fields is
  /// enforced by the seqlock, not by the individual orderings.
  struct Slot {
    std::atomic<Timestamp> cts{kInfinityTs};
    std::atomic<Timestamp> dts{kInfinityTs};
    /// Immutable once published; retired through the EpochManager when the
    /// slot is reclaimed or overwritten.
    std::atomic<const std::string*> value{nullptr};
  };

  /// The slot storage, published via `array_` with a release store so a
  /// single load hands a reader a capacity and a matching slot block —
  /// loading them from two places could pair a grown capacity with the old
  /// (smaller) allocation and probe out of bounds. Superseded arrays are
  /// retired through the EpochManager (readers drain on the frozen copy);
  /// the value buffers are shared with the successor and owned by whichever
  /// array is current when the object dies.
  struct VersionArray {
    explicit VersionArray(int capacity_arg)
        : capacity(capacity_arg),
          slots(new Slot[static_cast<std::size_t>(capacity_arg)]) {}
    const int capacity;
    const std::unique_ptr<Slot[]> slots;
  };

  /// RAII seqlock write section: seq_ odd while a mutation is in flight.
  class WriteSection {
   public:
    explicit WriteSection(const MvccObject& object) : seq_(object.seq_) {
      seq_.fetch_add(1, std::memory_order_release);
    }
    ~WriteSection() { seq_.fetch_add(1, std::memory_order_release); }

   private:
    std::atomic<std::uint32_t>& seq_;
  };

  /// Buffers (and at most one superseded slot array) unlinked during a
  /// mutation, handed to the EpochManager only after the seqlock write
  /// section closes — retiring (and the occasional reclaim sweep it
  /// triggers) must never extend the window in which optimistic readers see
  /// an odd sequence number.
  class RetireList {
   public:
    void Add(const std::string* buffer) {
      if (buffer != nullptr) buffers_[count_++] = buffer;
    }
    void AddArray(const VersionArray* array) { array_ = array; }
    ~RetireList();  // retires everything collected

   private:
    const std::string* buffers_[AtomicSlotMask::kMaxSlots];
    int count_ = 0;
    const VersionArray* array_ = nullptr;
  };

  /// The seqlock validation protocol, in exactly one place: snapshot the
  /// sequence number, reject in-flight mutations, run the probe, fence, and
  /// revalidate. Every optimistic accessor goes through this helper so the
  /// memory-ordering-critical steps cannot drift apart.
  template <typename ProbeFn>
  ReadResult ValidatedRead(ProbeFn&& probe) const {
    const std::uint32_t before = seq_.load(std::memory_order_acquire);
    if (before & 1u) return ReadResult::kRetry;
    const ReadResult result = probe();
    if (result == ReadResult::kRetry) return result;
    // The acquire fence orders the probe's loads before the revalidation
    // load: an unchanged (even) sequence proves no mutation overlapped.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != before) {
      return ReadResult::kRetry;
    }
    return result;
  }

  int FindVisibleSlot(const VersionArray& array, Timestamp read_ts) const;
  int FindLiveSlot(const VersionArray& array) const;
  /// GC body shared by GarbageCollect() and Install(); caller already holds
  /// an open WriteSection and flushes `retired` after closing it.
  int GarbageCollectLocked(Timestamp oldest_active, RetireList* retired);
  /// Unlinks and returns the value buffer of `slot`, scrubbing its header.
  const std::string* UnlinkSlotValue(const VersionArray& array, int slot);
  /// Publishes a copy of the current array at `new_capacity` (caller holds
  /// the exclusive latch and an open WriteSection) and queues the old one
  /// for epoch retirement. Used slot indices are preserved, so `used_` and
  /// any slot index found before the growth stay valid.
  VersionArray* GrowLocked(int new_capacity, RetireList* retired);

  AtomicSlotMask used_;
  std::atomic<VersionArray*> array_;
  /// Seqlock word: odd = mutation in progress. Mutable so read-only users
  /// can share the object while mutators (holding the exclusive latch)
  /// version it.
  mutable std::atomic<std::uint32_t> seq_{0};
};

}  // namespace streamsi

#ifdef STREAMSI_READ_DEBUG
#include <cstdio>
namespace streamsi {
/// Diagnostic-only: formatted dump of every slot (caller must exclude
/// mutators).
inline std::string DebugDumpObject(const MvccObject& object) {
  std::string out;
  char buf[160];
  const auto headers = object.Headers();
  std::snprintf(buf, sizeof(buf), "versions=%zu cap=%d latest_cts=%llu; ",
                headers.size(), object.capacity(),
                (unsigned long long)object.LatestCts());
  out += buf;
  std::string value;
  for (const VersionHeader& h : headers) {
    const bool vis = object.GetVisible(h.cts, &value);
    std::snprintf(buf, sizeof(buf), "[cts=%llu dts=%llu val@cts='%s'] ",
                  (unsigned long long)h.cts, (unsigned long long)h.dts,
                  vis ? value.c_str() : "?");
    out += buf;
  }
  return out;
}
}  // namespace streamsi
#endif

#endif  // STREAMSI_MVCC_MVCC_OBJECT_H_
