#include "mvcc/mvcc_object.h"

#include <algorithm>

#include "common/coding.h"

namespace streamsi {

// Minimum capacity is 2: an update must be able to install the new version
// while the still-live predecessor occupies its slot (the predecessor only
// becomes reclaimable after its dts falls behind OldestActiveVersion).
MvccObject::MvccObject(int capacity)
    : capacity_(std::clamp(capacity, 2, AtomicSlotMask::kMaxSlots)),
      headers_(static_cast<std::size_t>(capacity_)),
      values_(static_cast<std::size_t>(capacity_)) {}

MvccObject::MvccObject(MvccObject&& other) noexcept
    : capacity_(other.capacity_),
      used_(other.used_.Raw()),
      headers_(std::move(other.headers_)),
      values_(std::move(other.values_)) {}

int MvccObject::FindVisibleSlot(Timestamp read_ts) const {
  int best = -1;
  Timestamp best_cts = 0;
  for (int i = 0; i < capacity_; ++i) {
    if (!used_.IsSet(i)) continue;
    const VersionHeader& h = headers_[static_cast<std::size_t>(i)];
    if (h.cts <= read_ts && read_ts < h.dts) {
      // At most one version can satisfy this, but be defensive: take the
      // newest matching version.
      if (best == -1 || h.cts > best_cts) {
        best = i;
        best_cts = h.cts;
      }
    }
  }
  return best;
}

int MvccObject::FindLiveSlot() const {
  for (int i = 0; i < capacity_; ++i) {
    if (used_.IsSet(i) &&
        headers_[static_cast<std::size_t>(i)].dts == kInfinityTs) {
      return i;
    }
  }
  return -1;
}

bool MvccObject::GetVisible(Timestamp read_ts, std::string* value) const {
  const int slot = FindVisibleSlot(read_ts);
  if (slot < 0) return false;
  if (value != nullptr) *value = values_[static_cast<std::size_t>(slot)];
  return true;
}

Timestamp MvccObject::LatestCts() const {
  Timestamp latest = kInitialTs;
  for (int i = 0; i < capacity_; ++i) {
    if (used_.IsSet(i)) {
      latest = std::max(latest, headers_[static_cast<std::size_t>(i)].cts);
    }
  }
  return latest;
}

Timestamp MvccObject::LatestModification() const {
  Timestamp latest = kInitialTs;
  for (int i = 0; i < capacity_; ++i) {
    if (!used_.IsSet(i)) continue;
    const VersionHeader& h = headers_[static_cast<std::size_t>(i)];
    latest = std::max(latest, h.cts);
    if (h.dts != kInfinityTs) latest = std::max(latest, h.dts);
  }
  return latest;
}

bool MvccObject::HasLiveVersion() const { return FindLiveSlot() >= 0; }

Status MvccObject::Install(std::string_view value, Timestamp commit_ts,
                           Timestamp oldest_active) {
  int slot = used_.Acquire(capacity_);
  if (slot == AtomicSlotMask::kNoSlot) {
    // On-demand GC (§4.1): reclaim versions invisible to all active txns.
    GarbageCollect(oldest_active);
    slot = used_.Acquire(capacity_);
    if (slot == AtomicSlotMask::kNoSlot) {
      return Status::ResourceExhausted("MVCC version array full");
    }
  }
  // Terminate the previously live version.
  const int live = FindLiveSlot();
  if (live >= 0 && live != slot) {
    headers_[static_cast<std::size_t>(live)].dts = commit_ts;
  }
  headers_[static_cast<std::size_t>(slot)] = {commit_ts, kInfinityTs};
  values_[static_cast<std::size_t>(slot)].assign(value.data(), value.size());
  return Status::OK();
}

Status MvccObject::MarkDeleted(Timestamp commit_ts) {
  const int live = FindLiveSlot();
  if (live < 0) return Status::NotFound("delete of non-existing version");
  headers_[static_cast<std::size_t>(live)].dts = commit_ts;
  return Status::OK();
}

int MvccObject::GarbageCollect(Timestamp oldest_active) {
  int reclaimed = 0;
  for (int i = 0; i < capacity_; ++i) {
    if (!used_.IsSet(i)) continue;
    const VersionHeader& h = headers_[static_cast<std::size_t>(i)];
    // dts <= oldest_active: no active or future snapshot can see it.
    if (h.dts != kInfinityTs && h.dts <= oldest_active) {
      values_[static_cast<std::size_t>(i)].clear();
      values_[static_cast<std::size_t>(i)].shrink_to_fit();
      used_.Release(i);
      ++reclaimed;
    }
  }
  return reclaimed;
}

int MvccObject::PurgeAfter(Timestamp max_cts) {
  int purged = 0;
  for (int i = 0; i < capacity_; ++i) {
    if (!used_.IsSet(i)) continue;
    VersionHeader& h = headers_[static_cast<std::size_t>(i)];
    if (h.cts > max_cts) {
      values_[static_cast<std::size_t>(i)].clear();
      used_.Release(i);
      ++purged;
    } else if (h.dts != kInfinityTs && h.dts > max_cts) {
      // The version that superseded this one was purged: it is live again.
      h.dts = kInfinityTs;
    }
  }
  return purged;
}

void MvccObject::EncodeTo(std::string* out) const {
  PutVarint32(out, static_cast<std::uint32_t>(capacity_));
  std::uint32_t count = 0;
  for (int i = 0; i < capacity_; ++i) {
    if (used_.IsSet(i)) ++count;
  }
  PutVarint32(out, count);
  for (int i = 0; i < capacity_; ++i) {
    if (!used_.IsSet(i)) continue;
    const VersionHeader& h = headers_[static_cast<std::size_t>(i)];
    PutVarint64(out, h.cts);
    PutVarint64(out, h.dts);
    PutLengthPrefixed(out, values_[static_cast<std::size_t>(i)]);
  }
}

Result<MvccObject> MvccObject::Decode(std::string_view in, int capacity) {
  const char* p = in.data();
  const char* limit = p + in.size();
  std::uint32_t stored_capacity = 0;
  p = GetVarint32(p, limit, &stored_capacity);
  if (p == nullptr) return Status::Corruption("bad MVCC capacity");
  std::uint32_t count = 0;
  p = GetVarint32(p, limit, &count);
  if (p == nullptr) return Status::Corruption("bad MVCC version count");

  MvccObject object(capacity > 0 ? capacity
                                 : static_cast<int>(stored_capacity));
  if (count > static_cast<std::uint32_t>(object.capacity_)) {
    return Status::Corruption("MVCC version count exceeds capacity");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    VersionHeader h;
    p = GetVarint64(p, limit, &h.cts);
    if (p == nullptr) return Status::Corruption("bad MVCC cts");
    p = GetVarint64(p, limit, &h.dts);
    if (p == nullptr) return Status::Corruption("bad MVCC dts");
    std::string_view value;
    p = GetLengthPrefixed(p, limit, &value);
    if (p == nullptr) return Status::Corruption("bad MVCC value");
    const int slot = object.used_.Acquire(object.capacity_);
    object.headers_[static_cast<std::size_t>(slot)] = h;
    object.values_[static_cast<std::size_t>(slot)].assign(value.data(),
                                                          value.size());
  }
  return object;
}

std::vector<VersionHeader> MvccObject::Headers() const {
  std::vector<VersionHeader> result;
  for (int i = 0; i < capacity_; ++i) {
    if (used_.IsSet(i)) result.push_back(headers_[static_cast<std::size_t>(i)]);
  }
  return result;
}

}  // namespace streamsi
