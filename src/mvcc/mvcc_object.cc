#include "mvcc/mvcc_object.h"

#include <algorithm>

#include "common/coding.h"
#include "common/epoch.h"

namespace streamsi {

// Minimum capacity is 2: an update must be able to install the new version
// while the still-live predecessor occupies its slot (the predecessor only
// becomes reclaimable after its dts falls behind OldestActiveVersion).
MvccObject::MvccObject(int capacity)
    : array_(new VersionArray(
          std::clamp(capacity, 2, AtomicSlotMask::kMaxSlots))) {}

MvccObject::MvccObject(MvccObject&& other) noexcept
    : used_(other.used_.Raw()),
      array_(other.array_.load(std::memory_order_relaxed)),
      seq_(other.seq_.load(std::memory_order_relaxed)) {
  other.array_.store(nullptr, std::memory_order_relaxed);
}

MvccObject::~MvccObject() {
  // The object is being destroyed: no readers may touch it anymore (same
  // contract as deleting the owning store). Buffers already retired through
  // the EpochManager were unlinked (slot pointer nulled) first, and retired
  // slot arrays do not own the buffers they shared with their successor, so
  // nothing is freed twice.
  VersionArray* array = array_.load(std::memory_order_acquire);
  if (array == nullptr) return;
  for (int i = 0; i < array->capacity; ++i) {
    delete array->slots[static_cast<std::size_t>(i)].value.load(
        std::memory_order_acquire);
  }
  delete array;
}

int MvccObject::FindVisibleSlot(const VersionArray& array,
                                Timestamp read_ts) const {
  int best = -1;
  Timestamp best_cts = 0;
  for (int i = 0; i < array.capacity; ++i) {
    if (!used_.IsSet(i)) continue;
    const Slot& slot = array.slots[static_cast<std::size_t>(i)];
    const Timestamp cts = slot.cts.load(std::memory_order_acquire);
    const Timestamp dts = slot.dts.load(std::memory_order_acquire);
    if (cts <= read_ts && read_ts < dts) {
      // At most one version can satisfy this, but be defensive: take the
      // newest matching version.
      if (best == -1 || cts > best_cts) {
        best = i;
        best_cts = cts;
      }
    }
  }
  return best;
}

int MvccObject::FindLiveSlot(const VersionArray& array) const {
  for (int i = 0; i < array.capacity; ++i) {
    if (used_.IsSet(i) &&
        array.slots[static_cast<std::size_t>(i)].dts.load(
            std::memory_order_acquire) == kInfinityTs) {
      return i;
    }
  }
  return -1;
}

// ------------------------------------------------------ optimistic reads ---

namespace {

/// Copies `*buffer` into `*value` without shrinking capacity (so a reused
/// output string stops allocating once it reaches its high-water mark).
inline void CopyValue(const std::string* buffer, std::string* value) {
  if (value != nullptr && buffer != nullptr) {
    value->assign(buffer->data(), buffer->size());
  }
}

}  // namespace

MvccObject::ReadResult MvccObject::TryGetVisible(Timestamp read_ts,
                                                 std::string* value) const {
  return ValidatedRead([&]() -> ReadResult {
    // One acquire load pairs capacity with its slot block; a concurrent
    // growth is caught by the sequence validation, and the superseded array
    // stays frozen until the caller's EpochGuard closes.
    const VersionArray& array = *array_.load(std::memory_order_acquire);
    const int slot = FindVisibleSlot(array, read_ts);
    if (slot < 0) return ReadResult::kMiss;
    const std::string* buffer =
        array.slots[static_cast<std::size_t>(slot)].value.load(
            std::memory_order_acquire);
    if (buffer == nullptr) return ReadResult::kRetry;  // mid-install slot
    // Copy before validating: the bytes are immutable and the buffer cannot
    // be freed while the caller's EpochGuard pins the epoch, so the copy is
    // safe even if the slot was concurrently reused — validation then
    // discards it.
    CopyValue(buffer, value);
    return ReadResult::kHit;
  });
}

MvccObject::ReadResult MvccObject::TryGetLatestLive(std::string* value) const {
  return ValidatedRead([&]() -> ReadResult {
    const VersionArray& array = *array_.load(std::memory_order_acquire);
    const int slot = FindLiveSlot(array);
    if (slot < 0) return ReadResult::kMiss;
    const std::string* buffer =
        array.slots[static_cast<std::size_t>(slot)].value.load(
            std::memory_order_acquire);
    if (buffer == nullptr) return ReadResult::kRetry;  // mid-install slot
    CopyValue(buffer, value);
    return ReadResult::kHit;
  });
}

MvccObject::ReadResult MvccObject::TryLatestCts(Timestamp* cts) const {
  return ValidatedRead([&]() -> ReadResult {
    *cts = LatestCts();
    return ReadResult::kHit;
  });
}

// --------------------------------------------------------- latched reads ---

bool MvccObject::GetVisible(Timestamp read_ts, std::string* value) const {
  const VersionArray& array = *array_.load(std::memory_order_acquire);
  const int slot = FindVisibleSlot(array, read_ts);
  if (slot < 0) return false;
  CopyValue(array.slots[static_cast<std::size_t>(slot)].value.load(
                std::memory_order_acquire),
            value);
  return true;
}

bool MvccObject::GetLatestLive(std::string* value) const {
  const VersionArray& array = *array_.load(std::memory_order_acquire);
  const int slot = FindLiveSlot(array);
  if (slot < 0) return false;
  CopyValue(array.slots[static_cast<std::size_t>(slot)].value.load(
                std::memory_order_acquire),
            value);
  return true;
}

Timestamp MvccObject::LatestCts() const {
  const VersionArray& array = *array_.load(std::memory_order_acquire);
  Timestamp latest = kInitialTs;
  for (int i = 0; i < array.capacity; ++i) {
    if (used_.IsSet(i)) {
      latest = std::max(latest,
                        array.slots[static_cast<std::size_t>(i)].cts.load(
                            std::memory_order_acquire));
    }
  }
  return latest;
}

Timestamp MvccObject::LatestModification() const {
  const VersionArray& array = *array_.load(std::memory_order_acquire);
  Timestamp latest = kInitialTs;
  for (int i = 0; i < array.capacity; ++i) {
    if (!used_.IsSet(i)) continue;
    const Slot& slot = array.slots[static_cast<std::size_t>(i)];
    latest = std::max(latest, slot.cts.load(std::memory_order_acquire));
    const Timestamp dts = slot.dts.load(std::memory_order_acquire);
    if (dts != kInfinityTs) latest = std::max(latest, dts);
  }
  return latest;
}

bool MvccObject::HasLiveVersion() const {
  return FindLiveSlot(*array_.load(std::memory_order_acquire)) >= 0;
}

// -------------------------------------------------------------- mutators ---

MvccObject::RetireList::~RetireList() {
  for (int i = 0; i < count_; ++i) {
    EpochManager::Global().Retire(buffers_[i]);
  }
  if (array_ != nullptr) EpochManager::Global().Retire(array_);
}

const std::string* MvccObject::UnlinkSlotValue(const VersionArray& array,
                                               int slot) {
  Slot& target = array.slots[static_cast<std::size_t>(slot)];
  const std::string* old =
      target.value.exchange(nullptr, std::memory_order_acq_rel);
  // Scrub the header so a later re-acquisition never observes a stale
  // lifetime (in particular a stale open dts).
  target.cts.store(kInfinityTs, std::memory_order_release);
  target.dts.store(kInfinityTs, std::memory_order_release);
  return old;
}

MvccObject::VersionArray* MvccObject::GrowLocked(int new_capacity,
                                                 RetireList* retired) {
  VersionArray* old = array_.load(std::memory_order_relaxed);
  auto grown = std::make_unique<VersionArray>(new_capacity);
  for (int i = 0; i < old->capacity; ++i) {
    if (!used_.IsSet(i)) continue;
    const Slot& src = old->slots[static_cast<std::size_t>(i)];
    Slot& dst = grown->slots[static_cast<std::size_t>(i)];
    dst.cts.store(src.cts.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    dst.dts.store(src.dts.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    dst.value.store(src.value.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  // Publish the grown array, then retire the old one: readers that loaded
  // the old pointer keep probing a consistent (frozen) copy until their
  // epoch guard closes — the seqlock already forces them to retry the
  // result. The retired array does not own the shared value buffers.
  array_.store(grown.get(), std::memory_order_release);
  retired->AddArray(old);
  return grown.release();
}

Status MvccObject::Install(std::string_view value, Timestamp commit_ts,
                           GcFloor& floor, int grow_limit) {
  // The buffer is built before the write section so the seqlock stays odd
  // for as short as possible; unlinked buffers are retired after it closes
  // (RetireList destructs last) for the same reason.
  auto buffer = std::make_unique<const std::string>(value);

  VersionArray* array = array_.load(std::memory_order_relaxed);
  // Resolve the (lazy) GC watermark outside the seqlock when the array is
  // full: the caller holds the exclusive per-entry latch, so the occupancy
  // cannot change underneath us, and optimistic readers of this object are
  // not stalled behind the transaction-table scans.
  if (used_.Count() >= array->capacity) (void)floor.Get();

  RetireList retired;
  WriteSection section(*this);
  // Locate the live predecessor BEFORE acquiring a slot: a freshly acquired
  // slot still carries the header of its previous occupant (possibly with an
  // open dts) and must never be mistaken for the live version.
  const int live = FindLiveSlot(*array);
  int slot = used_.Acquire(array->capacity);
  if (slot == AtomicSlotMask::kNoSlot) {
    // On-demand GC (§4.1): reclaim versions invisible to all active txns.
    GarbageCollectLocked(floor.Get(), &retired);
    slot = used_.Acquire(array->capacity);
  }
  if (slot == AtomicSlotMask::kNoSlot) {
    // GC freed nothing — every version is still visible to some snapshot
    // (typically one lagging reader pin). Capacity pressure must not fail
    // the write: double the array, up to the caller's limit.
    const int limit = std::min(grow_limit, AtomicSlotMask::kMaxSlots);
    if (array->capacity < limit) {
      array = GrowLocked(std::min(array->capacity * 2, limit), &retired);
      slot = used_.Acquire(array->capacity);
    }
    if (slot == AtomicSlotMask::kNoSlot) {
      return Status::ResourceExhausted("MVCC version array full");
    }
  }
  // Terminate the previously live version (GC never reclaims it: its dts is
  // still open, so `live` remains valid across the collection above — and
  // growth preserves slot indices).
  if (live >= 0) {
    array->slots[static_cast<std::size_t>(live)].dts.store(
        commit_ts, std::memory_order_release);
  }
  Slot& target = array->slots[static_cast<std::size_t>(slot)];
  target.cts.store(commit_ts, std::memory_order_release);
  target.dts.store(kInfinityTs, std::memory_order_release);
  retired.Add(target.value.exchange(buffer.release(),
                                    std::memory_order_acq_rel));
  return Status::OK();
}

Status MvccObject::MarkDeleted(Timestamp commit_ts) {
  WriteSection section(*this);
  const VersionArray& array = *array_.load(std::memory_order_relaxed);
  const int live = FindLiveSlot(array);
  if (live < 0) return Status::NotFound("delete of non-existing version");
  array.slots[static_cast<std::size_t>(live)].dts.store(
      commit_ts, std::memory_order_release);
  return Status::OK();
}

int MvccObject::GarbageCollectLocked(Timestamp oldest_active,
                                     RetireList* retired) {
  const VersionArray& array = *array_.load(std::memory_order_relaxed);
  int reclaimed = 0;
  for (int i = 0; i < array.capacity; ++i) {
    if (!used_.IsSet(i)) continue;
    const Slot& slot = array.slots[static_cast<std::size_t>(i)];
    const Timestamp dts = slot.dts.load(std::memory_order_acquire);
    // dts <= oldest_active: no active or future snapshot can see it.
    if (dts != kInfinityTs && dts <= oldest_active) {
      retired->Add(UnlinkSlotValue(array, i));
      used_.Release(i);
      ++reclaimed;
    }
  }
  return reclaimed;
}

int MvccObject::GarbageCollect(Timestamp oldest_active) {
  RetireList retired;
  WriteSection section(*this);
  return GarbageCollectLocked(oldest_active, &retired);
}

int MvccObject::PurgeAfter(Timestamp max_cts) {
  return PurgeUncommitted(max_cts, [](Timestamp) { return false; });
}

int MvccObject::PurgeUncommitted(
    Timestamp covered_cts, const std::function<bool(Timestamp)>& is_committed) {
  RetireList retired;
  WriteSection section(*this);
  const VersionArray& array = *array_.load(std::memory_order_relaxed);
  int purged = 0;
  const auto doomed = [&](Timestamp ts) {
    return ts > covered_cts && !is_committed(ts);
  };
  for (int i = 0; i < array.capacity; ++i) {
    if (!used_.IsSet(i)) continue;
    Slot& slot = array.slots[static_cast<std::size_t>(i)];
    if (doomed(slot.cts.load(std::memory_order_acquire))) {
      retired.Add(UnlinkSlotValue(array, i));
      used_.Release(i);
      ++purged;
    } else {
      const Timestamp dts = slot.dts.load(std::memory_order_acquire);
      if (dts != kInfinityTs && doomed(dts)) {
        // The version that superseded this one was purged: it is live again.
        slot.dts.store(kInfinityTs, std::memory_order_release);
      }
    }
  }
  return purged;
}

// --------------------------------------------------------- serialization ---

void MvccObject::EncodeTo(std::string* out) const {
  const VersionArray& array = *array_.load(std::memory_order_acquire);
  PutVarint32(out, static_cast<std::uint32_t>(array.capacity));
  std::uint32_t count = 0;
  for (int i = 0; i < array.capacity; ++i) {
    if (used_.IsSet(i)) ++count;
  }
  PutVarint32(out, count);
  for (int i = 0; i < array.capacity; ++i) {
    if (!used_.IsSet(i)) continue;
    const Slot& slot = array.slots[static_cast<std::size_t>(i)];
    PutVarint64(out, slot.cts.load(std::memory_order_acquire));
    PutVarint64(out, slot.dts.load(std::memory_order_acquire));
    const std::string* buffer = slot.value.load(std::memory_order_acquire);
    PutLengthPrefixed(out, buffer != nullptr ? *buffer : std::string_view());
  }
}

Result<MvccObject> MvccObject::Decode(std::string_view in, int min_capacity) {
  const char* p = in.data();
  const char* limit = p + in.size();
  std::uint32_t stored_capacity = 0;
  p = GetVarint32(p, limit, &stored_capacity);
  if (p == nullptr) return Status::Corruption("bad MVCC capacity");
  if (stored_capacity > static_cast<std::uint32_t>(AtomicSlotMask::kMaxSlots)) {
    return Status::Corruption("MVCC capacity exceeds slot-mask width");
  }
  std::uint32_t count = 0;
  p = GetVarint32(p, limit, &count);
  if (p == nullptr) return Status::Corruption("bad MVCC version count");

  // Size from the blob, never down to the configured default: an object
  // that grew past `min_capacity` before it was persisted must come back
  // with room for every version it recorded.
  MvccObject object(
      std::max(min_capacity, static_cast<int>(stored_capacity)));
  if (count > static_cast<std::uint32_t>(object.capacity())) {
    return Status::Corruption("MVCC version count exceeds capacity");
  }
  const VersionArray& array =
      *object.array_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < count; ++i) {
    Timestamp cts = 0;
    Timestamp dts = 0;
    p = GetVarint64(p, limit, &cts);
    if (p == nullptr) return Status::Corruption("bad MVCC cts");
    p = GetVarint64(p, limit, &dts);
    if (p == nullptr) return Status::Corruption("bad MVCC dts");
    std::string_view value;
    p = GetLengthPrefixed(p, limit, &value);
    if (p == nullptr) return Status::Corruption("bad MVCC value");
    const int slot = object.used_.Acquire(array.capacity);
    Slot& target = array.slots[static_cast<std::size_t>(slot)];
    target.cts.store(cts, std::memory_order_relaxed);
    target.dts.store(dts, std::memory_order_relaxed);
    target.value.store(new std::string(value), std::memory_order_relaxed);
  }
  return object;
}

std::vector<VersionHeader> MvccObject::Headers() const {
  const VersionArray& array = *array_.load(std::memory_order_acquire);
  std::vector<VersionHeader> result;
  for (int i = 0; i < array.capacity; ++i) {
    if (used_.IsSet(i)) {
      const Slot& slot = array.slots[static_cast<std::size_t>(i)];
      result.push_back(
          VersionHeader{slot.cts.load(std::memory_order_acquire),
                        slot.dts.load(std::memory_order_acquire)});
    }
  }
  return result;
}

}  // namespace streamsi
