// Commit-path microbenchmark (§4.2: "writes are merely appended"; §5: the
// paper's evaluation depends on synchronous writes dominating commit cost).
//
// Three sections, emitted as one JSON document on stdout so
// bench/run_bench.sh can archive the numbers as BENCH_commit_path.json:
//
//   commit/<sync>    end-to-end commit throughput through the full
//                    TransactionManager pipeline (validate, apply, durable
//                    group-commit record, publish) at 1..16 concurrent
//                    committers, with the group-commit log in
//                    SyncMode::kSimulated (50us per sync — the paper's
//                    "fsync dominates" shape) and SyncMode::kNone (pure
//                    CPU path: write-set churn + bookkeeping + publication).
//   hot_key_churn    commit throughput when every committer overwrites its
//                    own hot key while ONE lagging reader holds snapshot
//                    pins across dozens of commits — the adaptive
//                    version-array growth + bounded-backpressure workload
//                    (pre-PR 4 this failed commits with ResourceExhausted
//                    once a key outran mvcc_slots under the pin). Reports
//                    slot growths, wait stalls and failed commits.
//   write_set        ns/op for the transaction-private dirty array: first
//                    Put, in-place overwrite Put, and the read-your-own-
//                    writes probe, measured on a reused (steady-state)
//                    write set, plus heap allocations per reuse cycle.
//
// The "seed_baseline" block records the same numbers measured at the PR 1
// tree (per-record synced WAL appends, eager per-commit GC floors,
// std::string/unordered_map write sets) on this container, so before/after
// is tracked in one artifact.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/group_commit_log.h"
#include "core/transaction_manager.h"
#include "storage/hash_backend.h"
#include "txn/protocol.h"
#include "txn/si_protocol.h"

// ---------------------------------------------------------------------------
// Heap-allocation counter (same technique as the allocation tests): global
// operator new overridden binary-wide so the write-set section can report
// allocations per steady-state cycle.
namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
std::atomic<bool> g_count_heap_allocations{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_heap_allocations.load(std::memory_order_relaxed)) {
    g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace streamsi {
namespace {

constexpr int kWritesPerTxn = 4;
constexpr std::uint64_t kKeysPerThread = 1024;
constexpr auto kDuration = std::chrono::milliseconds(300);
constexpr std::uint64_t kSimulatedSyncMicros = 50;

struct CommitResult {
  double commits_per_s = 0.0;
  double us_per_commit = 0.0;
};

/// Full manager pipeline against one in-memory state with a durable
/// group-commit log (the log's SyncMode is the experiment variable).
/// `batched_validation`: -1 leaves the SI default, 0/1 force per-key or
/// batch-amortized Phase-1 validation (the batch_validate sweep).
CommitResult RunCommitters(SyncMode sync_mode, int committers,
                           const std::string& dir,
                           int writes_per_txn = kWritesPerTxn,
                           int batched_validation = -1) {
  StateContext context;
  const StateId state = context.RegisterState("bench");
  context.RegisterGroup({state});

  StoreOptions store_options;
  store_options.write_through = false;  // isolate commit protocol + log cost
  VersionedStore store(state, "bench", std::make_unique<HashTableBackend>(),
                       store_options);

  GroupCommitLog log(sync_mode, kSimulatedSyncMicros);
  if (!log.Open(dir + "/group_commits.log").ok()) std::abort();

  auto protocol = MakeProtocol(ProtocolType::kMvcc, &context);
  if (batched_validation >= 0) {
    static_cast<SiProtocol*>(protocol.get())
        ->set_batched_validation(batched_validation != 0);
  }
  TransactionManager manager(
      &context, protocol.get(),
      [&](StateId id) { return id == state ? &store : nullptr; }, &log,
      /*durable_group_log=*/true);

  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> total_commits{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(committers));
  for (int t = 0; t < committers; ++t) {
    threads.emplace_back([&, t] {
      // Disjoint per-thread key ranges: no First-Committer-Wins conflicts,
      // the measurement is pure commit-path cost.
      std::vector<std::string> keys;
      keys.reserve(kKeysPerThread);
      for (std::uint64_t k = 0; k < kKeysPerThread; ++k) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "key-%03d-%05llu", t,
                      static_cast<unsigned long long>(k));
        keys.emplace_back(buf);
      }
      const std::string value(64, 'v');
      std::uint64_t commits = 0;
      std::uint64_t cursor = 0;
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto handle = manager.Begin();
        if (!handle.ok()) continue;
        bool ok = true;
        for (int w = 0; w < writes_per_txn && ok; ++w) {
          ok = manager
                   .Write((*handle)->txn(), state,
                          keys[cursor++ % kKeysPerThread], value)
                   .ok();
        }
        if (ok && manager.Commit((*handle)->txn()).ok()) ++commits;
      }
      total_commits.fetch_add(commits, std::memory_order_relaxed);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  (void)log.Close();
  (void)fsutil::RemoveFile(dir + "/group_commits.log");

  CommitResult result;
  const double commits = static_cast<double>(total_commits.load());
  result.commits_per_s = commits / seconds;
  result.us_per_commit =
      commits > 0 ? seconds * 1e6 * committers / commits : 0.0;
  return result;
}

struct HotKeyResult {
  double commits_per_s = 0.0;
  std::uint64_t failed_commits = 0;
  std::uint64_t slot_growths = 0;
  std::uint64_t version_wait_stalls = 0;
};

/// Hot-key churn under a lagging reader pin: each committer overwrites ONE
/// private key as fast as it can while a reader transaction holds a snapshot
/// pin for ~5 ms at a time — long enough (on this 1-core container, where a
/// descheduled reader already produced the effect) that every hot key's
/// version array fills with pinned versions and must grow / wait instead of
/// failing the commit. Disjoint keys keep First-Committer-Wins conflicts out
/// of the measurement.
HotKeyResult RunHotKeyChurn(int committers, const std::string& dir) {
  StateContext context;
  const StateId state = context.RegisterState("bench");
  context.RegisterGroup({state});

  StoreOptions store_options;
  store_options.write_through = false;
  // Defaults on purpose: mvcc_slots = 8, growth to 64, 200 ms wait budget —
  // the production shape the partitioned stream stress runs with.
  VersionedStore store(state, "bench", std::make_unique<HashTableBackend>(),
                       store_options);

  GroupCommitLog log(SyncMode::kNone, 0);
  if (!log.Open(dir + "/group_commits.log").ok()) std::abort();

  auto protocol = MakeProtocol(ProtocolType::kMvcc, &context);
  TransactionManager manager(
      &context, protocol.get(),
      [&](StateId id) { return id == state ? &store : nullptr; }, &log,
      /*durable_group_log=*/true);

  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> total_commits{0};
  std::atomic<std::uint64_t> failed_commits{0};

  // The lagging reader: pins a snapshot (first read per group), sits on it,
  // ends, repeats. While it sits, every overwrite of a hot key stays
  // visible to its pin and cannot be reclaimed.
  std::thread reader([&] {
    std::string value;
    while (!stop.load(std::memory_order_relaxed)) {
      auto handle = manager.Begin();
      if (!handle.ok()) continue;
      (void)manager.Read((*handle)->txn(), state, "hot-000", &value);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      (void)(*handle)->Commit();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(committers));
  for (int t = 0; t < committers; ++t) {
    threads.emplace_back([&, t] {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "hot-%03d", t);
      const std::string key(buf);
      const std::string value(64, 'v');
      std::uint64_t commits = 0;
      std::uint64_t failures = 0;
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto handle = manager.Begin();
        if (!handle.ok()) continue;
        if (!manager.Write((*handle)->txn(), state, key, value).ok()) {
          continue;
        }
        if (manager.Commit((*handle)->txn()).ok()) {
          ++commits;
        } else {
          ++failures;
        }
      }
      total_commits.fetch_add(commits, std::memory_order_relaxed);
      failed_commits.fetch_add(failures, std::memory_order_relaxed);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  reader.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  (void)log.Close();
  (void)fsutil::RemoveFile(dir + "/group_commits.log");

  HotKeyResult result;
  result.commits_per_s = static_cast<double>(total_commits.load()) / seconds;
  result.failed_commits = failed_commits.load();
  result.slot_growths = store.stats().slot_growths.load();
  result.version_wait_stalls = store.stats().version_wait_stalls.load();
  return result;
}

struct ChurnResult {
  double first_put_ns = 0.0;
  double update_put_ns = 0.0;
  double probe_ns = 0.0;
  std::uint64_t allocs_per_cycle = 0;
};

/// Steady-state write-set churn: the same WriteSet object is reused
/// (Clear + refill) the way a pooled per-slot write set is across
/// transactions; keys are long enough to defeat SSO.
ChurnResult RunWriteSetChurn() {
  constexpr int kKeys = 64;
  constexpr int kCycles = 20000;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "churn-key-%012d", i);
    keys.emplace_back(buf);
  }
  const std::string value(64, 'v');

  WriteSet ws;
  // Warm up to the steady state (arena/index/table at high-water mark).
  for (int i = 0; i < kKeys; ++i) ws.Put(keys[static_cast<std::size_t>(i)],
                                         value);
  ws.Clear();

  using Clock = std::chrono::steady_clock;
  std::uint64_t first_ns = 0;
  std::uint64_t update_ns = 0;
  std::uint64_t probe_ns = 0;
  std::uint64_t probe_hits = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    auto t0 = Clock::now();
    for (const auto& key : keys) ws.Put(key, value);
    auto t1 = Clock::now();
    for (const auto& key : keys) ws.Put(key, value);  // in-place overwrite
    auto t2 = Clock::now();
    for (const auto& key : keys) probe_hits += ws.Contains(key) ? 1 : 0;
    auto t3 = Clock::now();
    ws.Clear();
    first_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    update_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
            .count());
    probe_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2)
            .count());
  }
  if (probe_hits != static_cast<std::uint64_t>(kKeys) * kCycles) std::abort();

  // One measured steady-state cycle for the allocation count.
  g_heap_allocations.store(0, std::memory_order_relaxed);
  g_count_heap_allocations.store(true, std::memory_order_relaxed);
  for (const auto& key : keys) ws.Put(key, value);
  for (const auto& key : keys) probe_hits += ws.Contains(key) ? 1 : 0;
  ws.Clear();
  g_count_heap_allocations.store(false, std::memory_order_relaxed);

  const double ops = static_cast<double>(kKeys) * kCycles;
  ChurnResult result;
  result.first_put_ns = static_cast<double>(first_ns) / ops;
  result.update_put_ns = static_cast<double>(update_ns) / ops;
  result.probe_ns = static_cast<double>(probe_ns) / ops;
  result.allocs_per_cycle = g_heap_allocations.load(std::memory_order_relaxed);
  return result;
}

const char* SyncName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone:
      return "none";
    case SyncMode::kFsync:
      return "fsync";
    case SyncMode::kSimulated:
      return "simulated";
  }
  return "?";
}

}  // namespace
}  // namespace streamsi

int main() {
  using namespace streamsi;

  std::string dir = "/tmp/streamsi_bench_commit_path";
  (void)fsutil::CreateDirIfMissing(dir);

  const int thread_counts[] = {1, 2, 4, 8, 16};
  const SyncMode modes[] = {SyncMode::kSimulated, SyncMode::kNone};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("{\n");
  std::printf("  \"writes_per_txn\": %d,\n", kWritesPerTxn);
  std::printf("  \"simulated_sync_micros\": %llu,\n",
              static_cast<unsigned long long>(kSimulatedSyncMicros));
  std::printf("  \"hardware_threads\": %d,\n", hw);
  std::printf("  \"benchmarks\": [\n");
  bool first = true;
  for (const SyncMode mode : modes) {
    double base = 0.0;
    for (const int committers : thread_counts) {
      const CommitResult r = RunCommitters(mode, committers, dir);
      if (committers == 1) base = r.commits_per_s;
      if (!first) std::printf(",\n");
      first = false;
      std::printf(
          "    {\"name\": \"commit/%s\", \"committers\": %d, "
          "\"commits_per_s\": %.0f, \"us_per_commit\": %.1f, "
          "\"scaling\": %.2f}",
          SyncName(mode), committers, r.commits_per_s, r.us_per_commit,
          base > 0 ? r.commits_per_s / base : 0.0);
      std::fflush(stdout);
    }
  }
  for (const int committers : thread_counts) {
    const HotKeyResult r = RunHotKeyChurn(committers, dir);
    std::printf(",\n");
    std::printf(
        "    {\"name\": \"commit/hot_key_churn\", \"committers\": %d, "
        "\"commits_per_s\": %.0f, \"failed_commits\": %llu, "
        "\"slot_growths\": %llu, \"version_wait_stalls\": %llu}",
        committers, r.commits_per_s,
        static_cast<unsigned long long>(r.failed_commits),
        static_cast<unsigned long long>(r.slot_growths),
        static_cast<unsigned long long>(r.version_wait_stalls));
    std::fflush(stdout);
  }
  // Batch-validate sweep: per-key vs batch-amortized SI Phase-1 validation
  // on the pure-CPU path. scaling on batched rows is vs the per-key row at
  // the same (writes_per_txn, committers).
  for (const int writes : {4, 16}) {
    for (const int committers : {1, 8}) {
      const CommitResult per_key =
          RunCommitters(SyncMode::kNone, committers, dir, writes,
                        /*batched_validation=*/0);
      const CommitResult batched =
          RunCommitters(SyncMode::kNone, committers, dir, writes,
                        /*batched_validation=*/1);
      std::printf(",\n");
      std::printf(
          "    {\"name\": \"commit/batch_validate\", \"mode\": \"per_key\", "
          "\"writes_per_txn\": %d, \"committers\": %d, "
          "\"commits_per_s\": %.0f, \"us_per_commit\": %.1f, "
          "\"scaling\": 1.00},\n",
          writes, committers, per_key.commits_per_s, per_key.us_per_commit);
      std::printf(
          "    {\"name\": \"commit/batch_validate\", \"mode\": \"batched\", "
          "\"writes_per_txn\": %d, \"committers\": %d, "
          "\"commits_per_s\": %.0f, \"us_per_commit\": %.1f, "
          "\"scaling\": %.2f}",
          writes, committers, batched.commits_per_s, batched.us_per_commit,
          per_key.commits_per_s > 0
              ? batched.commits_per_s / per_key.commits_per_s
              : 0.0);
      std::fflush(stdout);
    }
  }
  const ChurnResult churn = RunWriteSetChurn();
  std::printf(",\n    {\"name\": \"write_set\", \"first_put_ns\": %.1f, "
              "\"update_put_ns\": %.1f, \"probe_ns\": %.1f, "
              "\"allocs_per_reuse_cycle\": %llu}",
              churn.first_put_ns, churn.update_put_ns, churn.probe_ns,
              static_cast<unsigned long long>(churn.allocs_per_cycle));
  std::printf("\n  ],\n");
  // The same benchmark measured at the PR 1 tree (per-record synced WAL
  // appends, eager per-commit GC floors, string/unordered_map write sets)
  // on this 1-core container — the before/after reference for this file.
  std::printf(
      "  \"seed_baseline\": {\n"
      "    \"commit_simulated_commits_per_s\": "
      "{\"1\": 7823, \"2\": 8022, \"4\": 8036, \"8\": 7918, \"16\": 7893},\n"
      "    \"commit_none_commits_per_s\": "
      "{\"1\": 295542, \"2\": 290186, \"4\": 258630, \"8\": 243565, "
      "\"16\": 254965},\n"
      "    \"write_set\": {\"first_put_ns\": 189.7, \"update_put_ns\": 55.2, "
      "\"probe_ns\": 49.0, \"allocs_per_reuse_cycle\": 327}\n"
      "  }\n}\n");
  (void)fsutil::RemoveDirRecursive(dir);
  return 0;
}
