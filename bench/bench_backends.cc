// Ablation A4 (§4.1 "every state type can use a suitable underlying
// structure"): backend choice and durability mode. Measures raw backend
// Put/Get and the end-to-end transactional write path per backend.

#include <benchmark/benchmark.h>

#include "core/streamsi.h"
#include "storage/hash_backend.h"
#include "storage/lsm_backend.h"
#include "storage/skiplist_backend.h"

namespace streamsi {
namespace {

std::unique_ptr<TableBackend> MakeBackend(int which, SyncMode sync) {
  BackendOptions options;
  options.sync_mode = sync;
  options.simulated_sync_micros = 50;
  options.memtable_bytes = 64 * 1024 * 1024;
  switch (which) {
    case 0:
      return std::make_unique<HashTableBackend>(options);
    case 1:
      return std::make_unique<SkipListBackend>(options);
    default: {
      options.path =
          "/tmp/streamsi_bench_backend_" + std::to_string(::getpid());
      (void)fsutil::RemoveDirRecursive(options.path);
      auto backend = LsmBackend::Open(options);
      return std::move(backend).value();
    }
  }
}

const char* BackendName(int which) {
  return which == 0 ? "hash" : (which == 1 ? "skiplist" : "lsm");
}

void BM_BackendPut(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const bool sync = state.range(1) != 0;
  auto backend =
      MakeBackend(which, sync ? SyncMode::kSimulated : SyncMode::kNone);
  const std::string value(20, 'v');
  std::uint64_t key = 0;
  for (auto _ : state) {
    std::string k = std::to_string(++key % 100000);
    benchmark::DoNotOptimize(backend->Put(k, value, sync));
  }
  state.SetLabel(std::string(BackendName(which)) + (sync ? "+sync" : ""));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BackendPut)
    ->ArgsProduct({{0, 1, 2}, {0}})
    ->ArgsProduct({{2}, {1}})
    ->ArgNames({"backend", "sync"});

void BM_BackendGet(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  auto backend = MakeBackend(which, SyncMode::kNone);
  const std::string value(20, 'v');
  constexpr std::uint64_t kKeys = 100000;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    (void)backend->Put(std::to_string(k), value, false);
  }
  (void)backend->Flush();
  std::string out;
  std::uint64_t key = 0;
  for (auto _ : state) {
    key = (key * 2654435761u + 1) % kKeys;
    benchmark::DoNotOptimize(backend->Get(std::to_string(key), &out));
  }
  state.SetLabel(BackendName(which));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BackendGet)->Arg(0)->Arg(1)->Arg(2)->ArgName("backend");

/// End-to-end transactional write path (10-op txns) per backend, matching
/// the evaluation's write side.
void BM_TxnWritePath(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = which == 0 ? BackendType::kHash
                               : (which == 1 ? BackendType::kSkipList
                                             : BackendType::kLsm);
  options.backend_options.sync_mode =
      which == 2 ? SyncMode::kSimulated : SyncMode::kNone;
  if (which == 2) {
    options.base_dir =
        "/tmp/streamsi_bench_txnpath_" + std::to_string(::getpid());
    (void)fsutil::RemoveDirRecursive(options.base_dir);
  }
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, std::uint64_t>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));

  std::uint32_t key = 0;
  for (auto _ : state) {
    auto handle = (*db)->Begin();
    for (int op = 0; op < 10; ++op) {
      (void)table.Put((*handle)->txn(), ++key % 65536,
                      static_cast<std::uint64_t>(op));
    }
    benchmark::DoNotOptimize((*handle)->Commit());
  }
  state.SetLabel(BackendName(which));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TxnWritePath)->Arg(0)->Arg(1)->Arg(2)->ArgName("backend");

/// Transactional read path against a preloaded table (the readers of
/// Figure 4; "mostly only accessing memory").
void BM_TxnReadPath(benchmark::State& state) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, std::uint64_t>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));
  constexpr std::uint32_t kKeys = 65536;
  for (std::uint32_t k = 0; k < kKeys; ++k) (void)table.BulkLoad(k, k);

  std::uint32_t key = 0;
  for (auto _ : state) {
    auto handle = (*db)->Begin();
    for (int op = 0; op < 10; ++op) {
      key = (key * 2654435761u + 1) % kKeys;
      benchmark::DoNotOptimize(table.Get((*handle)->txn(), key));
    }
    benchmark::DoNotOptimize((*handle)->Commit());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_TxnReadPath);

}  // namespace
}  // namespace streamsi

BENCHMARK_MAIN();
