// Operator-runtime micro benchmarks: throughput of the push-based pipeline
// (map/filter chains, windows + aggregates, batcher + TO_TABLE).

#include <benchmark/benchmark.h>

#include "core/streamsi.h"
#include "stream/stream.h"

namespace streamsi {
namespace {

void BM_MapFilterChain(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  // Build chain once: source-less direct publisher.
  Publisher<std::uint64_t> input;
  std::vector<std::unique_ptr<OperatorBase>> ops;
  Publisher<std::uint64_t>* tail = &input;
  for (int i = 0; i < chain_length; ++i) {
    auto map = std::make_unique<Map<std::uint64_t, std::uint64_t>>(
        tail, [](const std::uint64_t& v) { return v + 1; });
    tail = map.get();
    ops.push_back(std::move(map));
    auto where = std::make_unique<Where<std::uint64_t>>(
        tail, [](const std::uint64_t& v) { return v % 2 == 0; });
    tail = where.get();
    ops.push_back(std::move(where));
  }
  std::uint64_t sink_count = 0;
  auto sink = std::make_unique<ForEach<std::uint64_t>>(
      tail, [&](const std::uint64_t&) { ++sink_count; });

  std::uint64_t v = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<std::uint64_t>(v++));
  }
  benchmark::DoNotOptimize(sink_count);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MapFilterChain)->Arg(1)->Arg(4)->Arg(16)->ArgName("stages");

void BM_WindowAggregate(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  Publisher<double> input;
  TumblingCountWindow<double> windows(&input,
                                      static_cast<std::size_t>(window));
  WindowAggregate<double, double> sums(
      &windows, 0.0, [](double& acc, const double& v) { acc += v; });
  double last = 0;
  ForEach<double> sink(&sums, [&](const double& v) { last = v; });

  double v = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<double>(v += 1.0));
  }
  benchmark::DoNotOptimize(last);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WindowAggregate)->Arg(10)->Arg(100)->Arg(1000)->ArgName("window");

void BM_GroupedAggregate(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  using Pair = std::pair<std::uint32_t, double>;
  Publisher<Pair> input;
  GroupedAggregate<Pair, std::uint32_t, double> agg(
      &input, [](const Pair& p) { return p.first; }, 0.0,
      [](double& acc, const Pair& p) { acc += p.second; });
  std::uint64_t emitted = 0;
  ForEach<std::pair<std::uint32_t, double>> sink(
      &agg, [&](const std::pair<std::uint32_t, double>&) { ++emitted; });

  std::uint32_t k = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<Pair>(
        {++k % static_cast<std::uint32_t>(keys), 1.0}));
  }
  benchmark::DoNotOptimize(emitted);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GroupedAggregate)->Arg(16)->Arg(4096)->ArgName("keys");

/// Full TO_TABLE path: batcher-injected boundaries, 10-tuple transactions
/// into an in-memory MVCC table (the write half of the smart-meter example).
void BM_ToTablePipeline(benchmark::State& state) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, double>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));
  auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());

  using Tuple = std::pair<std::uint32_t, double>;
  Publisher<Tuple> input;
  Batcher<Tuple> batcher(&input, 10);
  ToTable<Tuple, std::uint32_t, double> to_table(
      &batcher, table, ctx, [](const Tuple& t) { return t.first; },
      [](const Tuple& t) { return t.second; });

  std::uint32_t k = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<Tuple>({++k % 4096, 1.0}));
  }
  // Flush the trailing open batch.
  input.Publish(StreamElement<Tuple>(Punctuation::kEndOfStream));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["errors"] = static_cast<double>(to_table.error_count());
}
BENCHMARK(BM_ToTablePipeline);

}  // namespace
}  // namespace streamsi

BENCHMARK_MAIN();
