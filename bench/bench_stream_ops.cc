// Operator-runtime micro benchmarks: throughput of the push-based pipeline
// (map/filter chains, windows + aggregates, batcher + TO_TABLE).

#include <benchmark/benchmark.h>

#include "core/streamsi.h"
#include "stream/stream.h"

namespace streamsi {
namespace {

void BM_MapFilterChain(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  // Build chain once: source-less direct publisher.
  Publisher<std::uint64_t> input;
  std::vector<std::unique_ptr<OperatorBase>> ops;
  Publisher<std::uint64_t>* tail = &input;
  for (int i = 0; i < chain_length; ++i) {
    auto map = std::make_unique<Map<std::uint64_t, std::uint64_t>>(
        tail, [](const std::uint64_t& v) { return v + 1; });
    tail = map.get();
    ops.push_back(std::move(map));
    auto where = std::make_unique<Where<std::uint64_t>>(
        tail, [](const std::uint64_t& v) { return v % 2 == 0; });
    tail = where.get();
    ops.push_back(std::move(where));
  }
  std::uint64_t sink_count = 0;
  auto sink = std::make_unique<ForEach<std::uint64_t>>(
      tail, [&](const std::uint64_t&) { ++sink_count; });

  std::uint64_t v = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<std::uint64_t>(v++));
  }
  benchmark::DoNotOptimize(sink_count);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MapFilterChain)->Arg(1)->Arg(4)->Arg(16)->ArgName("stages");

void BM_WindowAggregate(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  Publisher<double> input;
  TumblingCountWindow<double> windows(&input,
                                      static_cast<std::size_t>(window));
  WindowAggregate<double, double> sums(
      &windows, 0.0, [](double& acc, const double& v) { acc += v; });
  double last = 0;
  ForEach<double> sink(&sums, [&](const double& v) { last = v; });

  double v = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<double>(v += 1.0));
  }
  benchmark::DoNotOptimize(last);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WindowAggregate)->Arg(10)->Arg(100)->Arg(1000)->ArgName("window");

void BM_GroupedAggregate(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  using Pair = std::pair<std::uint32_t, double>;
  Publisher<Pair> input;
  GroupedAggregate<Pair, std::uint32_t, double> agg(
      &input, [](const Pair& p) { return p.first; }, 0.0,
      [](double& acc, const Pair& p) { acc += p.second; });
  std::uint64_t emitted = 0;
  ForEach<std::pair<std::uint32_t, double>> sink(
      &agg, [&](const std::pair<std::uint32_t, double>&) { ++emitted; });

  std::uint32_t k = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<Pair>(
        {++k % static_cast<std::uint32_t>(keys), 1.0}));
  }
  benchmark::DoNotOptimize(emitted);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GroupedAggregate)->Arg(16)->Arg(4096)->ArgName("keys");

/// Full TO_TABLE path: batcher-injected boundaries, 10-tuple transactions
/// into an in-memory MVCC table (the write half of the smart-meter example).
void BM_ToTablePipeline(benchmark::State& state) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, double>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));
  auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());

  using Tuple = std::pair<std::uint32_t, double>;
  Publisher<Tuple> input;
  Batcher<Tuple> batcher(&input, 10);
  ToTable<Tuple, std::uint32_t, double> to_table(
      &batcher, table, ctx, [](const Tuple& t) { return t.first; },
      [](const Tuple& t) { return t.second; });

  std::uint32_t k = 0;
  for (auto _ : state) {
    input.Publish(StreamElement<Tuple>({++k % 4096, 1.0}));
  }
  // Flush the trailing open batch.
  input.Publish(StreamElement<Tuple>(Punctuation::kEndOfStream));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["errors"] = static_cast<double>(to_table.error_count());
}
BENCHMARK(BM_ToTablePipeline);

// --- OnChunk counterparts -------------------------------------------------
// Same operator graphs driven through PublishChunk with a 256-tuple morsel:
// one virtual dispatch + one tight loop per chunk instead of per tuple.
// Compare items/s against the per-tuple benchmark of the same name.

constexpr std::size_t kChunkSize = 256;

void BM_MapFilterChainChunked(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  Publisher<std::uint64_t> input;
  std::vector<std::unique_ptr<OperatorBase>> ops;
  Publisher<std::uint64_t>* tail = &input;
  for (int i = 0; i < chain_length; ++i) {
    auto map = std::make_unique<Map<std::uint64_t, std::uint64_t>>(
        tail, [](const std::uint64_t& v) { return v + 1; });
    tail = map.get();
    ops.push_back(std::move(map));
    auto where = std::make_unique<Where<std::uint64_t>>(
        tail, [](const std::uint64_t& v) { return v % 2 == 0; });
    tail = where.get();
    ops.push_back(std::move(where));
  }
  std::uint64_t sink_count = 0;
  auto sink = std::make_unique<ForEach<std::uint64_t>>(
      tail, [&](const std::uint64_t&) { ++sink_count; });

  Chunk<std::uint64_t> chunk(kChunkSize);
  for (std::uint64_t i = 0; i < kChunkSize; ++i) chunk.Append(i, 0);
  for (auto _ : state) {
    input.PublishChunk(chunk.view());
  }
  benchmark::DoNotOptimize(sink_count);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChunkSize));
}
BENCHMARK(BM_MapFilterChainChunked)->Arg(1)->Arg(4)->Arg(16)->ArgName(
    "stages");

void BM_WhereChunked(benchmark::State& state) {
  // Selectivity matters for the chunk path: all-pass forwards the original
  // view zero-copy, partial passes compact survivors into a scratch chunk.
  const int pass_permille = static_cast<int>(state.range(0));
  Publisher<std::uint64_t> input;
  const std::uint64_t cut =
      static_cast<std::uint64_t>(pass_permille) * kChunkSize / 1000;
  Where<std::uint64_t> where(
      &input, [cut](const std::uint64_t& v) { return v % kChunkSize < cut; });
  std::uint64_t sink_count = 0;
  ForEach<std::uint64_t> sink(&where,
                              [&](const std::uint64_t&) { ++sink_count; });

  Chunk<std::uint64_t> chunk(kChunkSize);
  for (std::uint64_t i = 0; i < kChunkSize; ++i) chunk.Append(i, 0);
  for (auto _ : state) {
    input.PublishChunk(chunk.view());
  }
  benchmark::DoNotOptimize(sink_count);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChunkSize));
}
BENCHMARK(BM_WhereChunked)->Arg(1000)->Arg(500)->ArgName("pass_permille");

void BM_GroupedAggregateChunked(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  using Pair = std::pair<std::uint32_t, double>;
  Publisher<Pair> input;
  GroupedAggregate<Pair, std::uint32_t, double> agg(
      &input, [](const Pair& p) { return p.first; }, 0.0,
      [](double& acc, const Pair& p) { acc += p.second; });
  std::uint64_t emitted = 0;
  ForEach<std::pair<std::uint32_t, double>> sink(
      &agg, [&](const std::pair<std::uint32_t, double>&) { ++emitted; });

  Chunk<Pair> chunk(kChunkSize);
  for (std::uint32_t i = 0; i < kChunkSize; ++i) {
    chunk.Append({i % static_cast<std::uint32_t>(keys), 1.0}, 0);
  }
  for (auto _ : state) {
    input.PublishChunk(chunk.view());
  }
  benchmark::DoNotOptimize(emitted);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChunkSize));
}
BENCHMARK(BM_GroupedAggregateChunked)->Arg(16)->Arg(4096)->ArgName("keys");

void BM_ToTablePipelineChunked(benchmark::State& state) {
  DatabaseOptions options;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, double>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));
  auto ctx = std::make_shared<StreamTxnContext>(&(*db)->txn_manager());

  using Tuple = std::pair<std::uint32_t, double>;
  Publisher<Tuple> input;
  Batcher<Tuple> batcher(&input, 10);
  ToTable<Tuple, std::uint32_t, double> to_table(
      &batcher, table, ctx, [](const Tuple& t) { return t.first; },
      [](const Tuple& t) { return t.second; });

  Chunk<Tuple> chunk(kChunkSize);
  for (std::uint32_t i = 0; i < kChunkSize; ++i) {
    chunk.Append({i % 4096, 1.0}, 0);
  }
  for (auto _ : state) {
    input.PublishChunk(chunk.view());
  }
  // Flush the trailing open batch.
  input.Publish(StreamElement<Tuple>(Punctuation::kEndOfStream));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kChunkSize));
  state.counters["errors"] = static_cast<double>(to_table.error_count());
}
BENCHMARK(BM_ToTablePipelineChunked);

}  // namespace
}  // namespace streamsi

BENCHMARK_MAIN();
