// Read-path microbenchmark (§5.2: readers "mostly only access memory").
//
// Measures VersionedStore snapshot reads directly — no protocol, no stream
// layer — across three key distributions:
//   hot      single-key hot read (the worst case for latch contention)
//   uniform  uniform random over the key space
//   zipf     Zipfian (theta=0.99) skewed access
// each at 1..16 reader threads, plus a variant with one concurrent writer
// continuously installing new versions. Emits JSON on stdout so
// bench/run_bench.sh can archive the numbers as BENCH_read_path.json:
// ns/op per configuration and the scaling efficiency relative to the
// single-threaded run of the same scenario.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "storage/hash_backend.h"
#include "txn/versioned_store.h"

namespace streamsi {
namespace {

constexpr std::uint64_t kKeys = 100'000;
constexpr int kValueSize = 64;
constexpr auto kDuration = std::chrono::milliseconds(300);

std::string KeyFor(std::uint64_t k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key-%012llu",
                static_cast<unsigned long long>(k));
  return std::string(buf);
}

struct RunResult {
  double ns_per_op = 0.0;
  double ops_per_s = 0.0;
};

enum class Dist { kHot, kUniform, kZipf };

RunResult RunReaders(VersionedStore& store, Dist dist, int readers,
                     bool with_writer) {
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> total_ops{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers) + 1);

  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      // Pre-build the key strings the thread will probe with so key
      // formatting is not part of the measured loop.
      std::vector<std::string> keys;
      if (dist == Dist::kHot) {
        keys.push_back(KeyFor(kKeys / 2));
      } else {
        keys.reserve(4096);
        Xorshift rng(static_cast<std::uint64_t>(r) * 2654435761u + 1);
        ZipfianGenerator zipf(kKeys, 0.99,
                              static_cast<std::uint64_t>(r) + 17);
        for (int i = 0; i < 4096; ++i) {
          const std::uint64_t k = dist == Dist::kUniform
                                      ? rng.Next() % kKeys
                                      : zipf.ScrambledNext();
          keys.push_back(KeyFor(k));
        }
      }
      std::string value;
      value.reserve(256);
      std::uint64_t ops = 0;
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& key = keys[ops & (keys.size() - 1)];
        (void)store.ReadCommitted(kInfinityTs - 1, key, &value);
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  if (with_writer) {
    threads.emplace_back([&] {
      Xorshift rng(99);
      std::string value(kValueSize, 'w');
      Timestamp ts = 1'000'000;
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key = KeyFor(rng.Next() % kKeys);
        const Timestamp commit = ++ts;
        (void)store.ApplyCommitted(key, value, false, commit, commit, false);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  const double ops = static_cast<double>(total_ops.load());
  RunResult result;
  result.ops_per_s = ops / seconds;
  result.ns_per_op = ops > 0 ? seconds * 1e9 * readers / ops : 0.0;
  return result;
}

const char* DistName(Dist dist) {
  switch (dist) {
    case Dist::kHot:
      return "hot";
    case Dist::kUniform:
      return "uniform";
    case Dist::kZipf:
      return "zipf";
  }
  return "?";
}

}  // namespace
}  // namespace streamsi

int main() {
  using namespace streamsi;

  StoreOptions options;
  options.write_through = false;  // isolate the in-memory read path
  VersionedStore store(0, "bench", std::make_unique<HashTableBackend>(),
                       options);
  {
    std::string value(kValueSize, 'v');
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      (void)store.BulkLoad(KeyFor(k), value);
    }
  }

  const int thread_counts[] = {1, 2, 4, 8, 16};
  const Dist dists[] = {Dist::kHot, Dist::kUniform, Dist::kZipf};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("{\n  \"unit\": \"ns/op\",\n");
  std::printf("  \"keys\": %llu,\n", static_cast<unsigned long long>(kKeys));
  std::printf("  \"hardware_threads\": %d,\n", hw);
  std::printf("  \"benchmarks\": [\n");
  bool first = true;
  for (const bool with_writer : {false, true}) {
    for (const Dist dist : dists) {
      double base_ops = 0.0;
      for (const int readers : thread_counts) {
        const RunResult r = RunReaders(store, dist, readers, with_writer);
        if (readers == 1) base_ops = r.ops_per_s;
        const double efficiency =
            base_ops > 0 ? r.ops_per_s / (base_ops * readers) : 0.0;
        if (!first) std::printf(",\n");
        first = false;
        std::printf(
            "    {\"name\": \"read/%s%s\", \"readers\": %d, "
            "\"ns_per_op\": %.1f, \"ops_per_s\": %.0f, "
            "\"scaling_efficiency\": %.3f}",
            DistName(dist), with_writer ? "+writer" : "", readers,
            r.ns_per_op, r.ops_per_s, efficiency);
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
