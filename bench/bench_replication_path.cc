// Replication-path benchmark (PR 7 log shipping): what replication costs
// the primary's commit path (shipping is strictly off-path — still one
// Append+Sync per group-commit batch — so the only commit-side cost is the
// larger kReplicatedCommit record carrying the write sets), how fast a
// follower catches up on a shipped chain, and how quickly staleness lag
// converges to zero against an idle primary.
//
// Emitted as one JSON document on stdout so bench/run_bench.sh can archive
// it as BENCH_replication_path.json:
//
//   commit/replication_off    commit throughput of a plain durable
//                             database (role kNone, kGroupCommit records).
//   commit/replication_on     the same workload as a replication primary:
//                             kReplicatedCommit records (write sets ride in
//                             the durable record) + a live background
//                             shipper. The delta is the full cost of
//                             replication on the commit path.
//   follower/catch_up         time for a fresh follower to replay a shipped
//                             chain of N commits (apply throughput).
//   follower/lag_convergence  background ship+apply: ms from the last
//                             acked primary commit until the follower
//                             reports staleness_lag == 0.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/streamsi.h"
#include "replication/transport.h"

namespace streamsi {
namespace {

constexpr std::uint64_t kSimulatedSyncMicros = 5;
constexpr int kCommitters = 4;
constexpr int kHotKeys = 512;

DatabaseOptions BaseOptions(const std::string& dir) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kSimulated;
  options.backend_options.simulated_sync_micros = kSimulatedSyncMicros;
  options.base_dir = dir;
  return options;
}

struct CommitResult {
  double commits_per_s = 0.0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t ship_rounds = 0;
};

/// Multi-writer commit throughput; `transport` != nullptr runs the same
/// workload as a replication primary with a live background shipper.
CommitResult RunCommitPath(const std::string& dir, ShipTransport* transport) {
  (void)fsutil::RemoveDirRecursive(dir);
  DatabaseOptions options = BaseOptions(dir);
  if (transport != nullptr) {
    options.replication.role = ReplicationRole::kPrimary;
    options.replication.transport = transport;
    options.replication.ship_interval_ms = 1;
  }
  auto db = Database::Open(options);
  if (!db.ok()) std::abort();
  auto state = (*db)->CreateState("s");
  if (!state.ok()) std::abort();
  if (!(*db)->Recover().ok()) std::abort();
  const StateId id = (*state)->id();
  const std::string value(128, 'v');

  constexpr auto kDuration = std::chrono::milliseconds(400);
  std::atomic<std::uint64_t> total{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kCommitters; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto t = (*db)->Begin();
        if (!t.ok()) std::abort();
        const std::string key =
            "key-" + std::to_string(w) + "-" + std::to_string(i++ % kHotKeys);
        if (!(*db)->txn_manager().Write((*t)->txn(), id, key, value).ok()) {
          std::abort();
        }
        if (!(*t)->Commit().ok()) std::abort();
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const auto t1 = std::chrono::steady_clock::now();

  CommitResult result;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  result.commits_per_s = static_cast<double>(total.load()) / seconds;
  if (transport != nullptr) {
    const ReplicationStats stats = (*db)->Health().replication;
    result.bytes_shipped = stats.bytes_shipped;
    result.ship_rounds = stats.ship_rounds;
  }
  return result;
}

struct CatchUpResult {
  double catch_up_ms = 0.0;
  double commits_per_s = 0.0;
  std::uint64_t chain_bytes = 0;
};

/// Ships a chain of `commits` and measures a fresh follower replaying it.
CatchUpResult RunCatchUp(int commits, const std::string& primary_dir,
                         const std::string& follower_dir) {
  (void)fsutil::RemoveDirRecursive(primary_dir);
  (void)fsutil::RemoveDirRecursive(follower_dir);
  EnvFileTransport transport(nullptr, follower_dir);
  CatchUpResult result;
  {
    DatabaseOptions options = BaseOptions(primary_dir);
    options.replication.role = ReplicationRole::kPrimary;
    options.replication.transport = &transport;
    options.replication.manual_pump = true;
    auto db = Database::Open(options);
    if (!db.ok()) std::abort();
    auto state = (*db)->CreateState("s");
    if (!state.ok()) std::abort();
    if (!(*db)->Recover().ok()) std::abort();
    const StateId id = (*state)->id();
    const std::string value(128, 'v');
    for (int i = 0; i < commits; ++i) {
      auto t = (*db)->Begin();
      if (!t.ok()) std::abort();
      const std::string key = "key-" + std::to_string(i % kHotKeys);
      if (!(*db)->txn_manager().Write((*t)->txn(), id, key, value).ok()) {
        std::abort();
      }
      if (!(*t)->Commit().ok()) std::abort();
    }
    if (!(*db)->ShipNow().ok()) std::abort();
    result.chain_bytes = (*db)->group_log()->TotalSizeBytes();
  }

  DatabaseOptions options = BaseOptions(follower_dir);
  options.replication.role = ReplicationRole::kFollower;
  options.replication.manual_pump = true;
  const auto t0 = std::chrono::steady_clock::now();
  auto follower = Database::Open(options);
  if (!follower.ok()) std::abort();
  if (!(*follower)->ApplyShippedNow().ok()) std::abort();
  const auto t1 = std::chrono::steady_clock::now();
  result.catch_up_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  if ((*follower)->Health().replication.commits_applied <
      static_cast<std::uint64_t>(commits)) {
    std::abort();
  }
  result.commits_per_s =
      static_cast<double>(commits) / (result.catch_up_ms / 1000.0);
  return result;
}

struct LagResult {
  double convergence_ms = 0.0;
  std::uint64_t commits = 0;
};

/// Background ship+apply threads on both sides: time from the last acked
/// primary commit to the follower reporting zero staleness.
LagResult RunLagConvergence(int commits, const std::string& primary_dir,
                            const std::string& follower_dir) {
  (void)fsutil::RemoveDirRecursive(primary_dir);
  (void)fsutil::RemoveDirRecursive(follower_dir);
  EnvFileTransport transport(nullptr, follower_dir);
  DatabaseOptions primary_options = BaseOptions(primary_dir);
  primary_options.replication.role = ReplicationRole::kPrimary;
  primary_options.replication.transport = &transport;
  primary_options.replication.ship_interval_ms = 1;
  auto primary = Database::Open(primary_options);
  if (!primary.ok()) std::abort();
  auto state = (*primary)->CreateState("s");
  if (!state.ok()) std::abort();
  if (!(*primary)->Recover().ok()) std::abort();
  const StateId id = (*state)->id();

  DatabaseOptions follower_options = BaseOptions(follower_dir);
  follower_options.replication.role = ReplicationRole::kFollower;
  follower_options.replication.apply_interval_ms = 1;
  auto follower = Database::Open(follower_options);
  if (!follower.ok()) std::abort();

  const std::string value(128, 'v');
  for (int i = 0; i < commits; ++i) {
    auto t = (*primary)->Begin();
    if (!t.ok()) std::abort();
    const std::string key = "key-" + std::to_string(i % kHotKeys);
    if (!(*primary)->txn_manager().Write((*t)->txn(), id, key, value).ok()) {
      std::abort();
    }
    if (!(*t)->Commit().ok()) std::abort();
  }
  const auto t0 = std::chrono::steady_clock::now();
  LagResult result;
  result.commits = static_cast<std::uint64_t>(commits);
  for (;;) {
    const ReplicationStats stats = (*follower)->Health().replication;
    if (stats.commits_applied >= static_cast<std::uint64_t>(commits) &&
        stats.staleness_lag == 0 && stats.primary_watermark > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.convergence_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  return result;
}

}  // namespace
}  // namespace streamsi

int main() {
  using namespace streamsi;

  const std::string dir = "/tmp/streamsi_bench_replication_path";
  (void)fsutil::CreateDirIfMissing(dir);

  std::printf("{\n");
  std::printf("  \"simulated_sync_micros\": %llu,\n",
              static_cast<unsigned long long>(kSimulatedSyncMicros));
  std::printf("  \"committers\": %d,\n", kCommitters);
  std::printf("  \"benchmarks\": [\n");

  const CommitResult off = RunCommitPath(dir + "/plain", nullptr);
  std::printf(
      "    {\"name\": \"commit/replication_off\", \"commits_per_s\": %.0f},\n",
      off.commits_per_s);
  std::fflush(stdout);

  EnvFileTransport transport(nullptr, dir + "/sink");
  (void)fsutil::RemoveDirRecursive(dir + "/sink");
  const CommitResult on = RunCommitPath(dir + "/primary", &transport);
  std::printf(
      "    {\"name\": \"commit/replication_on\", \"commits_per_s\": %.0f, "
      "\"bytes_shipped\": %llu, \"ship_rounds\": %llu},\n",
      on.commits_per_s, static_cast<unsigned long long>(on.bytes_shipped),
      static_cast<unsigned long long>(on.ship_rounds));
  std::fflush(stdout);

  bool first = true;
  for (const int commits : {1000, 4000}) {
    const CatchUpResult r =
        RunCatchUp(commits, dir + "/cu_primary", dir + "/cu_follower");
    if (!first) std::printf(",\n");
    first = false;
    std::printf(
        "    {\"name\": \"follower/catch_up\", \"commits\": %d, "
        "\"catch_up_ms\": %.2f, \"applied_per_s\": %.0f, "
        "\"chain_bytes\": %llu}",
        commits, r.catch_up_ms, r.commits_per_s,
        static_cast<unsigned long long>(r.chain_bytes));
    std::fflush(stdout);
  }

  const LagResult lag =
      RunLagConvergence(2000, dir + "/lag_primary", dir + "/lag_follower");
  std::printf(",\n");
  std::printf(
      "    {\"name\": \"follower/lag_convergence\", \"commits\": %llu, "
      "\"convergence_ms\": %.2f}",
      static_cast<unsigned long long>(lag.commits), lag.convergence_ms);

  std::printf("\n  ]\n}\n");
  (void)fsutil::RemoveDirRecursive(dir);
  return 0;
}
