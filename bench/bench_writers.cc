// Ablation A2 (§4.2): single-writer vs. multi-writer commits under the
// First-Committer-Wins rule. The paper's protocol needs no exclusive locks
// with a single writer; with multiple writers the commit-time write locks
// and FCW checks kick in — this measures their cost and the abort rate.

#include <benchmark/benchmark.h>

#include <thread>

#include "core/streamsi.h"

namespace streamsi {
namespace {

void BM_MultiWriterCommits(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const double theta = static_cast<double>(state.range(1)) / 10.0;
  constexpr std::uint64_t kKeys = 10'000;

  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, std::uint64_t>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    (void)table.BulkLoad(static_cast<std::uint32_t>(k), k);
  }

  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> conflicts{0};

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        ZipfianGenerator zipf(kKeys, theta,
                              static_cast<std::uint64_t>(w) + 7);
        while (!stop.load(std::memory_order_relaxed)) {
          auto handle = (*db)->Begin();
          if (!handle.ok()) continue;
          bool ok = true;
          for (int op = 0; op < 5 && ok; ++op) {
            ok = table
                     .Put((*handle)->txn(),
                          static_cast<std::uint32_t>(zipf.ScrambledNext()),
                          static_cast<std::uint64_t>(op))
                     .ok();
          }
          if (ok && (*handle)->Commit().ok()) {
            commits.fetch_add(1, std::memory_order_relaxed);
          } else {
            conflicts.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (auto& thread : threads) thread.join();
  }

  const double total = static_cast<double>(commits.load() + conflicts.load());
  state.counters["commits_per_s"] = benchmark::Counter(
      static_cast<double>(commits.load()), benchmark::Counter::kIsRate);
  state.counters["abort_ratio"] =
      total > 0 ? static_cast<double>(conflicts.load()) / total : 0.0;
}
BENCHMARK(BM_MultiWriterCommits)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 20}})
    ->ArgNames({"writers", "theta_x10"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace streamsi

BENCHMARK_MAIN();
