// Ablation A5: transaction length. The paper fixes "medium length (10
// operations each)"; this sweeps 1..100 operations per transaction for all
// three protocols to show where per-transaction overheads (BOT/commit,
// validation, lock acquisition) dominate versus per-operation costs.

#include <benchmark/benchmark.h>

#include "core/streamsi.h"

namespace streamsi {
namespace {

void BM_TxnLength(benchmark::State& state) {
  const auto protocol = static_cast<ProtocolType>(state.range(0));
  const int ops = static_cast<int>(state.range(1));

  DatabaseOptions options;
  options.protocol = protocol;
  auto db = Database::Open(options);
  auto table = TransactionalTable<std::uint32_t, std::uint64_t>(
      &(*db)->txn_manager(), *(*db)->CreateState("s"));
  constexpr std::uint32_t kKeys = 65536;
  for (std::uint32_t k = 0; k < kKeys; ++k) (void)table.BulkLoad(k, k);

  std::uint32_t key = 0;
  for (auto _ : state) {
    auto handle = (*db)->Begin();
    for (int op = 0; op < ops; ++op) {
      key = (key * 2654435761u + 1) % kKeys;
      if (op % 2 == 0) {
        benchmark::DoNotOptimize(table.Get((*handle)->txn(), key));
      } else {
        (void)table.Put((*handle)->txn(), key,
                        static_cast<std::uint64_t>(op));
      }
    }
    benchmark::DoNotOptimize((*handle)->Commit());
  }
  state.SetLabel(ProtocolTypeName(protocol));
  // Operations per second is the comparable rate across lengths.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ops);
}
BENCHMARK(BM_TxnLength)
    ->ArgsProduct({{static_cast<long>(ProtocolType::kMvcc),
                    static_cast<long>(ProtocolType::kS2pl),
                    static_cast<long>(ProtocolType::kBocc)},
                   {1, 10, 100}})
    ->ArgNames({"protocol", "ops"});

}  // namespace
}  // namespace streamsi

BENCHMARK_MAIN();
