// Figure 4 reproduction: "Contention and scalability check with persistent
// synchronous writes and medium-sized transactions" (§5).
//
// Workload (§5.1): one stream continuously writing to two states plus N
// concurrent ad-hoc queries reading from both states. Both states are
// preloaded with `--keys` key-value pairs (4-byte keys, 20-byte values).
// Transactions are of medium length (10 operations). Key skew follows a
// Zipfian distribution over the contention level theta (Gray et al. '94);
// theta = 2.9 hits the same key ~82 % of the time.
//
// The harness sweeps theta x {readers} x {protocol} and prints the
// throughput series of both panels of Figure 4 (readers = 4 and 24), plus
// the reader/writer split backing the §5.2 claims. Absolute numbers depend
// on the machine; the paper's *shape* — MVCC flat across theta, S2PL and
// BOCC collapsing, BOCC slightly ahead at low contention with many readers
// — is what this reproduces.
//
// Usage: fig4_contention [--keys=N] [--seconds=S] [--readers=4,24]
//                        [--thetas=0,0.5,...] [--protocols=MVCC,S2PL,BOCC]
//                        [--backend=lsm|hash|skiplist] [--sync=simulated|
//                        fsync|none] [--sync-micros=U] [--ops=10]
//                        [--dir=PATH] [--report=full|split]

#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/streamsi.h"

namespace streamsi {
namespace {

struct Config {
  std::uint64_t keys = 1'000'000;
  double seconds = 1.5;
  std::vector<int> readers = {4, 24};
  std::vector<double> thetas = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  std::vector<ProtocolType> protocols = {ProtocolType::kMvcc,
                                         ProtocolType::kS2pl,
                                         ProtocolType::kBocc};
  BackendType backend = BackendType::kLsm;
  SyncMode sync = SyncMode::kSimulated;
  std::uint64_t sync_micros = 50;
  int ops_per_txn = 10;
  std::string dir = "/tmp/streamsi_fig4";
  bool split_report = true;
  /// Nice value for the writer thread (negative = higher priority).
  /// The paper ran on 24 hardware threads where the single stream writer
  /// effectively owned a core; on machines with fewer cores than benchmark
  /// threads the writer would otherwise get 1/(readers+1) of one core and
  /// commit orders of magnitude too rarely to exercise the protocols.
  /// Default: boost when the machine is oversubscribed (requires root /
  /// CAP_SYS_NICE; silently ignored otherwise).
  int writer_nice = -10;
};

struct CellResult {
  double total_ktps = 0;
  double reader_ktps = 0;
  double writer_ktps = 0;
  std::uint64_t aborts = 0;
};

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Config* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--keys")) {
      config->keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--seconds")) {
      config->seconds = std::strtod(v, nullptr);
    } else if (const char* v = value_of("--readers")) {
      config->readers.clear();
      for (const auto& part : Split(v, ',')) {
        config->readers.push_back(std::atoi(part.c_str()));
      }
    } else if (const char* v = value_of("--thetas")) {
      config->thetas.clear();
      for (const auto& part : Split(v, ',')) {
        config->thetas.push_back(std::strtod(part.c_str(), nullptr));
      }
    } else if (const char* v = value_of("--protocols")) {
      config->protocols.clear();
      for (const auto& part : Split(v, ',')) {
        if (part == "MVCC") config->protocols.push_back(ProtocolType::kMvcc);
        else if (part == "S2PL") config->protocols.push_back(ProtocolType::kS2pl);
        else if (part == "BOCC") config->protocols.push_back(ProtocolType::kBocc);
        else {
          std::fprintf(stderr, "unknown protocol: %s\n", part.c_str());
          return false;
        }
      }
    } else if (const char* v = value_of("--backend")) {
      auto type = ParseBackendType(v);
      if (!type.ok()) {
        std::fprintf(stderr, "unknown backend: %s\n", v);
        return false;
      }
      config->backend = type.value();
    } else if (const char* v = value_of("--sync")) {
      const std::string mode = v;
      if (mode == "simulated") config->sync = SyncMode::kSimulated;
      else if (mode == "fsync") config->sync = SyncMode::kFsync;
      else if (mode == "none") config->sync = SyncMode::kNone;
      else {
        std::fprintf(stderr, "unknown sync mode: %s\n", v);
        return false;
      }
    } else if (const char* v = value_of("--sync-micros")) {
      config->sync_micros = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--ops")) {
      config->ops_per_txn = std::atoi(v);
    } else if (const char* v = value_of("--dir")) {
      config->dir = v;
    } else if (const char* v = value_of("--report")) {
      config->split_report = std::string(v) != "total";
    } else if (const char* v = value_of("--writer-nice")) {
      config->writer_nice = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "see the header comment of fig4_contention.cc for flags\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// 20-byte payload derived from a counter (paper: 20-byte values).
std::string MakeValue(std::uint64_t seed) {
  std::string value(20, '\0');
  for (int i = 0; i < 20; ++i) {
    value[static_cast<std::size_t>(i)] =
        static_cast<char>('a' + (seed + static_cast<std::uint64_t>(i)) % 26);
  }
  return value;
}

/// One benchmark database: two grouped states under one protocol.
struct BenchDb {
  std::unique_ptr<Database> db;
  TransactionalTable<std::uint32_t, std::string> state_a;
  TransactionalTable<std::uint32_t, std::string> state_b;
};

BenchDb OpenBenchDb(const Config& config, ProtocolType protocol) {
  DatabaseOptions options;
  options.protocol = protocol;
  options.backend = config.backend;
  options.backend_options.sync_mode = config.sync;
  options.backend_options.simulated_sync_micros = config.sync_micros;
  // Large memtable: the benchmark measures commit latency, not flush storms.
  options.backend_options.memtable_bytes = 256ull * 1024 * 1024;
  options.store_options.mvcc_slots = 8;
  if (config.backend == BackendType::kLsm) {
    (void)fsutil::CreateDirIfMissing(config.dir);
    options.base_dir =
        config.dir + "/" + ProtocolTypeName(protocol);
    (void)fsutil::RemoveDirRecursive(options.base_dir);
  }

  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  BenchDb bench;
  bench.db = std::move(db).value();
  auto a = bench.db->CreateState("measurements_1");
  auto b = bench.db->CreateState("measurements_2");
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "state creation failed\n");
    std::exit(1);
  }
  bench.db->CreateGroup({(*a)->id(), (*b)->id()});
  bench.state_a = TransactionalTable<std::uint32_t, std::string>(
      &bench.db->txn_manager(), *a);
  bench.state_b = TransactionalTable<std::uint32_t, std::string>(
      &bench.db->txn_manager(), *b);

  // Preload (§5.1: "Both are initialized with a table size of one million
  // key-value pairs").
  for (std::uint64_t k = 0; k < config.keys; ++k) {
    const auto key = static_cast<std::uint32_t>(k);
    const std::string value = MakeValue(k);
    if (!bench.state_a.BulkLoad(key, value).ok() ||
        !bench.state_b.BulkLoad(key, value).ok()) {
      std::fprintf(stderr, "preload failed at key %llu\n",
                   static_cast<unsigned long long>(k));
      std::exit(1);
    }
  }
  (void)bench.state_a.FlushBackend();
  (void)bench.state_b.FlushBackend();
  return bench;
}

CellResult RunCell(BenchDb& bench, const Config& config, double theta,
                   int reader_count) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_commits{0};
  std::atomic<std::uint64_t> writer_commits{0};
  std::atomic<std::uint64_t> aborts{0};
  TransactionManager& tm = bench.db->txn_manager();

  // Writer: the continuous stream query updating both states.
  std::thread writer([&] {
    if (config.writer_nice != 0 &&
        std::thread::hardware_concurrency() <
            static_cast<unsigned>(reader_count + 1)) {
      // Best effort; fails without CAP_SYS_NICE.
      (void)setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)),
                        config.writer_nice);
    }
    ZipfianGenerator zipf(config.keys, theta, /*seed=*/1);
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto handle = tm.Begin();
      if (!handle.ok()) continue;
      Transaction& txn = (*handle)->txn();
      bool failed = false;
      for (int op = 0; op < config.ops_per_txn && !failed; ++op) {
        const auto key = static_cast<std::uint32_t>(zipf.ScrambledNext());
        auto& table = (op % 2 == 0) ? bench.state_a : bench.state_b;
        if (!table.Put(txn, key, MakeValue(++seq)).ok()) failed = true;
      }
      if (failed || !(*handle)->Commit().ok()) {
        aborts.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      writer_commits.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Ad-hoc readers.
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(reader_count));
  for (int r = 0; r < reader_count; ++r) {
    readers.emplace_back([&, r] {
      ZipfianGenerator zipf(config.keys, theta,
                            /*seed=*/1000 + static_cast<std::uint64_t>(r));
      while (!stop.load(std::memory_order_relaxed)) {
        auto handle = tm.Begin();
        if (!handle.ok()) continue;
        Transaction& txn = (*handle)->txn();
        bool failed = false;
        for (int op = 0; op < config.ops_per_txn && !failed; ++op) {
          const auto key = static_cast<std::uint32_t>(zipf.ScrambledNext());
          auto& table = (op % 2 == 0) ? bench.state_a : bench.state_b;
          const auto value = table.Get(txn, key);
          if (value.status().IsAborted()) failed = true;  // wait-die victim
        }
        if (failed || !(*handle)->Commit().ok()) {
          aborts.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        reader_commits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(config.seconds * 1000)));
  stop.store(true);
  writer.join();
  for (auto& reader : readers) reader.join();

  CellResult result;
  result.reader_ktps =
      static_cast<double>(reader_commits.load()) / config.seconds / 1000.0;
  result.writer_ktps =
      static_cast<double>(writer_commits.load()) / config.seconds / 1000.0;
  result.total_ktps = result.reader_ktps + result.writer_ktps;
  result.aborts = aborts.load();
  return result;
}

}  // namespace
}  // namespace streamsi

int main(int argc, char** argv) {
  using namespace streamsi;
  Config config;
  if (!ParseArgs(argc, argv, &config)) return 1;

  std::printf(
      "# Figure 4: contention & scalability, persistent synchronous "
      "writes, %d-op transactions\n",
      config.ops_per_txn);
  std::printf(
      "# keys/state=%llu backend=%s sync=%s(%llu us) seconds/cell=%.1f\n",
      static_cast<unsigned long long>(config.keys),
      config.backend == BackendType::kLsm
          ? "lsm"
          : (config.backend == BackendType::kHash ? "hash" : "skiplist"),
      config.sync == SyncMode::kSimulated
          ? "simulated"
          : (config.sync == SyncMode::kFsync ? "fsync" : "none"),
      static_cast<unsigned long long>(config.sync_micros), config.seconds);

  // protocol -> readers -> theta -> result
  std::vector<std::vector<std::vector<CellResult>>> results(
      config.protocols.size(),
      std::vector<std::vector<CellResult>>(
          config.readers.size(),
          std::vector<CellResult>(config.thetas.size())));

  for (std::size_t p = 0; p < config.protocols.size(); ++p) {
    const ProtocolType protocol = config.protocols[p];
    std::fprintf(stderr, "[fig4] preloading %s (%llu keys x 2 states)...\n",
                 ProtocolTypeName(protocol),
                 static_cast<unsigned long long>(config.keys));
    BenchDb bench = OpenBenchDb(config, protocol);
    for (std::size_t r = 0; r < config.readers.size(); ++r) {
      for (std::size_t t = 0; t < config.thetas.size(); ++t) {
        results[p][r][t] =
            RunCell(bench, config, config.thetas[t], config.readers[r]);
        std::fprintf(stderr, "[fig4] %s readers=%d theta=%.1f -> %.1f Ktps\n",
                     ProtocolTypeName(protocol), config.readers[r],
                     config.thetas[t], results[p][r][t].total_ktps);
      }
    }
  }

  for (std::size_t r = 0; r < config.readers.size(); ++r) {
    std::printf("\n## concurrent ad-hoc queries = %d\n", config.readers[r]);
    std::printf("%-8s", "theta");
    for (const auto protocol : config.protocols) {
      std::printf(" %12s", ProtocolTypeName(protocol));
    }
    if (config.split_report) std::printf("   (columns: total K tps)");
    std::printf("\n");
    for (std::size_t t = 0; t < config.thetas.size(); ++t) {
      std::printf("%-8.2f", config.thetas[t]);
      for (std::size_t p = 0; p < config.protocols.size(); ++p) {
        std::printf(" %12.1f", results[p][r][t].total_ktps);
      }
      std::printf("\n");
    }
    if (config.split_report) {
      std::printf("\n# reader/writer split and aborts (readers=%d)\n",
                  config.readers[r]);
      std::printf("%-8s %-6s %12s %12s %12s\n", "theta", "proto",
                  "reader_ktps", "writer_ktps", "aborts");
      for (std::size_t t = 0; t < config.thetas.size(); ++t) {
        for (std::size_t p = 0; p < config.protocols.size(); ++p) {
          const CellResult& cell = results[p][r][t];
          std::printf("%-8.2f %-6s %12.1f %12.3f %12llu\n", config.thetas[t],
                      ProtocolTypeName(config.protocols[p]), cell.reader_ktps,
                      cell.writer_ktps,
                      static_cast<unsigned long long>(cell.aborts));
        }
      }
    }
  }

  // §5.2 headline claims, printed as explicit checks.
  auto find_protocol = [&](ProtocolType type) -> int {
    for (std::size_t p = 0; p < config.protocols.size(); ++p) {
      if (config.protocols[p] == type) return static_cast<int>(p);
    }
    return -1;
  };
  const int mvcc = find_protocol(ProtocolType::kMvcc);
  const int s2pl = find_protocol(ProtocolType::kS2pl);
  const int bocc = find_protocol(ProtocolType::kBocc);
  if (mvcc >= 0 && !config.thetas.empty()) {
    std::printf("\n# shape checks (paper section 5.2)\n");
    const std::size_t lo = 0;
    const std::size_t hi = config.thetas.size() - 1;
    for (std::size_t r = 0; r < config.readers.size(); ++r) {
      const double mvcc_lo = results[static_cast<std::size_t>(mvcc)][r][lo].total_ktps;
      const double mvcc_hi = results[static_cast<std::size_t>(mvcc)][r][hi].total_ktps;
      std::printf("readers=%d: MVCC theta=%.1f->%.1f: %.1f -> %.1f Ktps (x%.2f)\n",
                  config.readers[r], config.thetas[lo], config.thetas[hi],
                  mvcc_lo, mvcc_hi, mvcc_hi / std::max(mvcc_lo, 1e-9));
      if (s2pl >= 0) {
        const double v = results[static_cast<std::size_t>(s2pl)][r][hi].total_ktps;
        std::printf("readers=%d: S2PL retains x%.2f of MVCC at theta=%.1f\n",
                    config.readers[r], v / std::max(mvcc_hi, 1e-9),
                    config.thetas[hi]);
      }
      if (bocc >= 0) {
        const double v_lo = results[static_cast<std::size_t>(bocc)][r][lo].total_ktps;
        const double v_hi = results[static_cast<std::size_t>(bocc)][r][hi].total_ktps;
        std::printf(
            "readers=%d: BOCC/MVCC at theta=%.1f: %.3f; at theta=%.1f: %.3f\n",
            config.readers[r], config.thetas[lo],
            v_lo / std::max(mvcc_lo, 1e-9), config.thetas[hi],
            v_hi / std::max(mvcc_hi, 1e-9));
      }
    }
  }
  return 0;
}
