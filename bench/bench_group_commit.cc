// Ablation A3 (§4.3): overhead of the consistency protocol as the number
// of states per topology group grows. The paper claims the modified
// 2-phase-commit "adds almost no overhead"; this measures commit throughput
// for 1, 2, 4 and 8 states written per transaction (same total number of
// writes, spread over the group).

#include <benchmark/benchmark.h>

#include "core/streamsi.h"

namespace streamsi {
namespace {

void BM_GroupCommit(benchmark::State& state) {
  const int group_size = static_cast<int>(state.range(0));
  constexpr int kWritesPerTxn = 8;  // spread over the group's states

  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  auto db = Database::Open(options);
  std::vector<TransactionalTable<std::uint32_t, std::uint64_t>> tables;
  std::vector<StateId> ids;
  for (int s = 0; s < group_size; ++s) {
    auto store = (*db)->CreateState("state_" + std::to_string(s));
    tables.emplace_back(&(*db)->txn_manager(), *store);
    ids.push_back((*store)->id());
  }
  (*db)->CreateGroup(ids);

  std::uint32_t key = 0;
  for (auto _ : state) {
    auto handle = (*db)->Begin();
    for (int op = 0; op < kWritesPerTxn; ++op) {
      (void)tables[static_cast<std::size_t>(op % group_size)].Put(
          (*handle)->txn(), ++key % 4096, static_cast<std::uint64_t>(op));
    }
    benchmark::DoNotOptimize((*handle)->Commit());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GroupCommit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("states_per_group");

/// Per-operator CommitState path (the paper's punctuation-driven commit):
/// the last flag's owner runs the global commit.
void BM_OperatorCommitState(benchmark::State& state) {
  const int group_size = static_cast<int>(state.range(0));
  DatabaseOptions options;
  auto db = Database::Open(options);
  std::vector<TransactionalTable<std::uint32_t, std::uint64_t>> tables;
  std::vector<StateId> ids;
  for (int s = 0; s < group_size; ++s) {
    auto store = (*db)->CreateState("state_" + std::to_string(s));
    tables.emplace_back(&(*db)->txn_manager(), *store);
    ids.push_back((*store)->id());
  }
  (*db)->CreateGroup(ids);

  std::uint32_t key = 0;
  for (auto _ : state) {
    auto handle = (*db)->Begin();
    for (auto& table : tables) {
      (void)(*db)->txn_manager().RegisterState((*handle)->txn(), table.id());
      (void)table.Put((*handle)->txn(), ++key % 4096, 1ull);
    }
    // Operator-by-operator commit; the last one coordinates.
    for (auto& table : tables) {
      benchmark::DoNotOptimize((*handle)->CommitState(table.id()));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OperatorCommitState)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("states_per_group");

}  // namespace
}  // namespace streamsi

BENCHMARK_MAIN();
