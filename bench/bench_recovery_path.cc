// Recovery-path benchmark (PR 5 durability lifecycle): restart-to-ready
// time as a function of commit-history length, with and without a
// checkpoint, plus the flush-stall impact of the LSM background flush
// worker on commit throughput.
//
// Emitted as one JSON document on stdout so bench/run_bench.sh can archive
// it as BENCH_recovery_path.json:
//
//   recovery/no_checkpoint   restart-to-ready (Database::Open on a durable
//                            directory: catalog replay, parallel
//                            LoadFromBackend + purge, group-log replay,
//                            clock fast-forward) after N commits with NO
//                            checkpoint — grows with N.
//   recovery/checkpoint      the same after a Checkpoint(): the group log
//                            is one cut record, the LSM WAL chains are
//                            flushed — restart work is bounded by data
//                            since the checkpoint, so the time stays flat
//                            as N grows 10x.
//   commit/flush_stall       commit throughput (SyncMode::kSimulated) with
//                            the default memtable vs a tiny one that seals
//                            constantly: flushes/compactions run on the
//                            background worker, so the committer pays only
//                            bounded admission stalls.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/streamsi.h"
#include "storage/lsm_backend.h"

namespace streamsi {
namespace {

constexpr std::uint64_t kSimulatedSyncMicros = 5;
constexpr int kHotKeys = 256;

DatabaseOptions MakeOptions(const std::string& dir,
                            std::size_t memtable_bytes) {
  DatabaseOptions options;
  options.protocol = ProtocolType::kMvcc;
  options.backend = BackendType::kLsm;
  options.backend_options.sync_mode = SyncMode::kSimulated;
  options.backend_options.simulated_sync_micros = kSimulatedSyncMicros;
  options.backend_options.memtable_bytes = memtable_bytes;
  options.base_dir = dir;
  return options;
}

struct RestartResult {
  double restart_ms = 0.0;
  std::uint64_t log_bytes = 0;
  std::uint64_t records_replayed = 0;
  bool from_checkpoint = false;
};

/// Life 1: `commits` transactions over a hot key set (+ a checkpoint when
/// requested), crash. Life 2: measure Database::Open until ready-to-serve.
RestartResult RunRestart(int commits, bool checkpoint,
                         const std::string& dir) {
  (void)fsutil::RemoveDirRecursive(dir);
  const DatabaseOptions options = MakeOptions(dir, 8 * 1024 * 1024);
  const std::string value(64, 'v');
  RestartResult result;
  {
    auto db = Database::Open(options);
    if (!db.ok()) std::abort();
    auto state = (*db)->CreateState("s");
    if (!state.ok()) std::abort();
    if (!(*db)->Recover().ok()) std::abort();
    const StateId id = (*state)->id();
    for (int i = 0; i < commits; ++i) {
      auto t = (*db)->Begin();
      if (!t.ok()) std::abort();
      const std::string key = "key-" + std::to_string(i % kHotKeys);
      if (!(*db)->txn_manager().Write((*t)->txn(), id, key, value).ok()) {
        std::abort();
      }
      if (!(*t)->Commit().ok()) std::abort();
    }
    if (checkpoint && !(*db)->Checkpoint().ok()) std::abort();
    result.log_bytes = (*db)->group_log()->TotalSizeBytes();
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto db = Database::Open(options);  // catalog reopen + recovery inside
  if (!db.ok()) std::abort();
  // Ready-to-serve means a transaction can read recovered data.
  {
    auto t = (*db)->Begin();
    if (!t.ok()) std::abort();
    std::string got;
    VersionedStore* store = (*db)->FindState("s");
    if (store == nullptr) std::abort();
    if (!(*db)->txn_manager()
             .Read((*t)->txn(), store->id(), "key-0", &got)
             .ok()) {
      std::abort();
    }
    if (!(*t)->Commit().ok()) std::abort();
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.restart_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();

  GroupCommitLog::ReplayInfo info;
  if (GroupCommitLog::Replay(dir + "/group_commits.log", &info).ok()) {
    result.records_replayed = info.records;
    result.from_checkpoint = info.from_checkpoint;
  }
  return result;
}

struct StallResult {
  double commits_per_s = 0.0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t flush_stalls = 0;
};

/// Commit throughput with 4 committers against one LSM state; the memtable
/// size is the experiment variable (tiny => constant background flushing).
StallResult RunFlushStall(std::size_t memtable_bytes,
                          const std::string& dir) {
  (void)fsutil::RemoveDirRecursive(dir);
  const DatabaseOptions options = MakeOptions(dir, memtable_bytes);
  auto db = Database::Open(options);
  if (!db.ok()) std::abort();
  auto state = (*db)->CreateState("s");
  if (!state.ok()) std::abort();
  if (!(*db)->Recover().ok()) std::abort();
  const StateId id = (*state)->id();
  const std::string value(128, 'v');

  constexpr int kCommitters = 4;
  constexpr auto kDuration = std::chrono::milliseconds(400);
  std::atomic<std::uint64_t> total{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kCommitters; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto t = (*db)->Begin();
        if (!t.ok()) std::abort();
        const std::string key =
            "key-" + std::to_string(w) + "-" + std::to_string(i++ % 512);
        if (!(*db)->txn_manager().Write((*t)->txn(), id, key, value).ok()) {
          std::abort();
        }
        if (!(*t)->Commit().ok()) std::abort();
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kDuration);
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const auto t1 = std::chrono::steady_clock::now();

  StallResult result;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  result.commits_per_s = static_cast<double>(total.load()) / seconds;
  auto* lsm = static_cast<LsmBackend*>((*state)->backend());
  result.flushes = lsm->FlushCount();
  result.compactions = lsm->CompactionCount();
  result.flush_stalls = lsm->FlushStallCount();
  return result;
}

}  // namespace
}  // namespace streamsi

int main() {
  using namespace streamsi;

  const std::string dir = "/tmp/streamsi_bench_recovery_path";
  (void)fsutil::CreateDirIfMissing(dir);

  std::printf("{\n");
  std::printf("  \"simulated_sync_micros\": %llu,\n",
              static_cast<unsigned long long>(kSimulatedSyncMicros));
  std::printf("  \"hot_keys\": %d,\n", kHotKeys);
  std::printf("  \"benchmarks\": [\n");
  bool first = true;
  const int history_lengths[] = {250, 1000, 2500};
  for (const bool checkpoint : {false, true}) {
    for (const int commits : history_lengths) {
      const RestartResult r =
          RunRestart(commits, checkpoint, dir + "/restart");
      if (!first) std::printf(",\n");
      first = false;
      std::printf(
          "    {\"name\": \"recovery/%s\", \"commits\": %d, "
          "\"restart_ms\": %.2f, \"log_bytes\": %llu, "
          "\"records_replayed\": %llu, \"from_checkpoint\": %s}",
          checkpoint ? "checkpoint" : "no_checkpoint", commits, r.restart_ms,
          static_cast<unsigned long long>(r.log_bytes),
          static_cast<unsigned long long>(r.records_replayed),
          r.from_checkpoint ? "true" : "false");
      std::fflush(stdout);
    }
  }
  struct {
    const char* label;
    std::size_t memtable_bytes;
  } const sweeps[] = {
      {"default_memtable", 8 * 1024 * 1024},
      {"tiny_memtable", 32 * 1024},
  };
  for (const auto& sweep : sweeps) {
    const StallResult r = RunFlushStall(sweep.memtable_bytes, dir + "/stall");
    std::printf(",\n");
    std::printf(
        "    {\"name\": \"commit/flush_stall\", \"memtable\": \"%s\", "
        "\"commits_per_s\": %.0f, \"flushes\": %llu, "
        "\"compactions\": %llu, \"flush_stalls\": %llu}",
        sweep.label, r.commits_per_s,
        static_cast<unsigned long long>(r.flushes),
        static_cast<unsigned long long>(r.compactions),
        static_cast<unsigned long long>(r.flush_stalls));
    std::fflush(stdout);
  }
  std::printf("\n  ]\n}\n");
  (void)fsutil::RemoveDirRecursive(dir);
  return 0;
}
