// Scan-path microbenchmark: the ordered-state additions of the secondary-
// index PR, measured at the VersionedStore layer (no protocol, no stream
// layer — same scoping as bench_read_path).
//
// Part 1 — snapshot range scans: ScanRangeCommitted ns/key over range
// lengths 10/100/1k/10k on a 100k-key store, alone and with one concurrent
// writer continuously installing new versions (the scan is latch-free and
// snapshot-stable, so the writer should cost little).
//
// Part 2 — index lookup vs full-scan filter: a base store of 100k rows
// tagged with one of 1k secondary groups, plus an index store of composite
// [group 0x00 primary] -> primary entries (what Database::CreateIndex
// maintains). One lookup = probe the index range [S 0x00, S 0x01) and
// point-read each hit from the base, versus scanning the whole base and
// filtering — the ratio is the reason the index subsystem exists.
//
// Emits JSON on stdout so bench/run_bench.sh archives the numbers as
// BENCH_scan_path.json at the repo root.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/index_key.h"
#include "storage/hash_backend.h"
#include "txn/versioned_store.h"

namespace streamsi {
namespace {

constexpr std::uint64_t kKeys = 100'000;
constexpr std::uint64_t kGroups = 1'000;
constexpr int kValueSize = 64;
constexpr auto kDuration = std::chrono::milliseconds(300);

std::string KeyFor(std::uint64_t k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key-%012llu",
                static_cast<unsigned long long>(k));
  return std::string(buf);
}

std::string GroupFor(std::uint64_t g) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "g-%06llu",
                static_cast<unsigned long long>(g));
  return std::string(buf);
}

/// Runs `body(rng)` repeatedly for kDuration; returns total "work units"
/// (keys visited / lookups done) per wall second as reported by the body.
template <typename Body>
double RunTimed(Body&& body) {
  Xorshift rng(42);
  std::uint64_t units = 0;
  const auto start = std::chrono::steady_clock::now();
  auto now = start;
  while (now - start < kDuration) {
    units += body(rng);
    now = std::chrono::steady_clock::now();
  }
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start)
          .count();
  return static_cast<double>(units) / seconds;
}

}  // namespace
}  // namespace streamsi

int main() {
  using namespace streamsi;

  StoreOptions options;
  options.write_through = false;  // isolate the in-memory scan path

  // ------------------------------------------------------ part 1: ranges ---
  VersionedStore store(0, "bench_scan", std::make_unique<HashTableBackend>(),
                       options);
  {
    std::string value(kValueSize, 'v');
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      (void)store.BulkLoad(KeyFor(k), value);
    }
  }

  std::printf("{\n  \"unit\": \"ns/key (scans), ns/lookup (index)\",\n");
  std::printf("  \"keys\": %llu,\n  \"groups\": %llu,\n",
              static_cast<unsigned long long>(kKeys),
              static_cast<unsigned long long>(kGroups));
  std::printf("  \"benchmarks\": [\n");
  bool first = true;

  const std::uint64_t range_lengths[] = {10, 100, 1'000, 10'000};
  for (const bool with_writer : {false, true}) {
    std::atomic<bool> stop{false};
    std::thread writer;
    if (with_writer) {
      writer = std::thread([&] {
        Xorshift rng(99);
        std::string value(kValueSize, 'w');
        Timestamp ts = 1'000'000;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::string key = KeyFor(rng.Next() % kKeys);
          const Timestamp commit = ++ts;
          (void)store.ApplyCommitted(key, value, false, commit, commit,
                                     false);
        }
      });
    }
    for (const std::uint64_t length : range_lengths) {
      std::string lo, hi;
      const double keys_per_s = RunTimed([&](Xorshift& rng) {
        const std::uint64_t start_key = rng.Next() % (kKeys - length);
        lo = KeyFor(start_key);
        hi = KeyFor(start_key + length);
        std::uint64_t visited = 0;
        (void)store.ScanRangeCommitted(
            kInfinityTs - 1, lo, hi,
            [&](std::string_view, std::string_view) {
              ++visited;
              return true;
            });
        return visited;
      });
      if (!first) std::printf(",\n");
      first = false;
      std::printf(
          "    {\"name\": \"scan/range=%llu%s\", \"ns_per_key\": %.1f, "
          "\"keys_per_s\": %.0f}",
          static_cast<unsigned long long>(length),
          with_writer ? "+writer" : "",
          keys_per_s > 0 ? 1e9 / keys_per_s : 0.0, keys_per_s);
      std::fflush(stdout);
    }
    if (with_writer) {
      stop.store(true, std::memory_order_relaxed);
      writer.join();
    }
  }

  // ------------------------------------------------- part 2: index probe ---
  // Base rows carry their group in the value; the index store holds the
  // composite entries CreateIndex would maintain. ~kKeys/kGroups hits per
  // probe.
  VersionedStore base(1, "bench_rows", std::make_unique<HashTableBackend>(),
                      options);
  VersionedStore index(2, "bench_rows_by_group",
                       std::make_unique<HashTableBackend>(), options);
  {
    std::string composite;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      const std::string key = KeyFor(k);
      const std::string group = GroupFor(k % kGroups);
      std::string value = group;
      value.resize(kValueSize, 'v');
      (void)base.BulkLoad(key, value);
      composite.clear();
      AppendIndexKey(&composite, group, key);
      (void)index.BulkLoad(composite, key);
    }
  }

  {
    std::string lo, hi, row;
    const double lookups_per_s = RunTimed([&](Xorshift& rng) {
      IndexExactBounds(GroupFor(rng.Next() % kGroups), &lo, &hi);
      (void)index.ScanRangeCommitted(
          kInfinityTs - 1, lo, hi,
          [&](std::string_view, std::string_view primary) {
            (void)base.ReadCommitted(kInfinityTs - 1, primary, &row);
            return true;
          });
      return std::uint64_t{1};
    });
    std::printf(",\n    {\"name\": \"lookup/index\", \"ns_per_lookup\": "
                "%.0f, \"lookups_per_s\": %.0f}",
                lookups_per_s > 0 ? 1e9 / lookups_per_s : 0.0, lookups_per_s);

    const double scans_per_s = RunTimed([&](Xorshift& rng) {
      const std::string group = GroupFor(rng.Next() % kGroups);
      std::uint64_t hits = 0;
      (void)base.ScanCommitted(
          kInfinityTs - 1, [&](std::string_view, std::string_view value) {
            if (value.size() >= group.size() &&
                std::string_view(value).substr(0, group.size()) == group) {
              ++hits;
            }
            return true;
          });
      (void)hits;
      return std::uint64_t{1};
    });
    std::printf(",\n    {\"name\": \"lookup/full_scan_filter\", "
                "\"ns_per_lookup\": %.0f, \"lookups_per_s\": %.0f}",
                scans_per_s > 0 ? 1e9 / scans_per_s : 0.0, scans_per_s);
    std::printf(",\n    {\"name\": \"lookup/index_speedup\", \"x\": %.1f}",
                scans_per_s > 0 ? lookups_per_s / scans_per_s : 0.0);
  }

  std::printf("\n  ]\n}\n");
  return 0;
}
