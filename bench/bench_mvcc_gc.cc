// Ablation A1 (§4.1): version-array capacity and on-demand garbage
// collection under an update-heavy workload.

#include <benchmark/benchmark.h>

#include "mvcc/mvcc_object.h"

namespace streamsi {
namespace {

/// Endless updates on one MvccObject with a trailing oldest_active horizon:
/// every Install that finds the array full triggers on-demand GC.
void BM_MvccInstallWithGc(benchmark::State& state) {
  const int capacity = static_cast<int>(state.range(0));
  const Timestamp horizon_lag = static_cast<Timestamp>(state.range(1));
  MvccObject object(capacity);
  Timestamp ts = 1;
  for (auto _ : state) {
    const Timestamp oldest_active = ts > horizon_lag ? ts - horizon_lag : 0;
    benchmark::DoNotOptimize(
        object.Install("twenty-byte-payload!", ts, oldest_active));
    ++ts;
  }
  state.counters["versions"] = object.VersionCount();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MvccInstallWithGc)
    ->ArgsProduct({{2, 4, 8, 16, 64}, {1, 4}})
    ->ArgNames({"slots", "horizon_lag"});

/// Visibility search cost as the version array fills up.
void BM_MvccVisibilityLookup(benchmark::State& state) {
  const int capacity = static_cast<int>(state.range(0));
  MvccObject object(capacity);
  for (int i = 0; i < capacity; ++i) {
    (void)object.Install("v" + std::to_string(i),
                         static_cast<Timestamp>(10 * (i + 1)), 0);
  }
  std::string value;
  Timestamp read_ts = 5;
  for (auto _ : state) {
    read_ts = (read_ts + 7) % (static_cast<Timestamp>(capacity) * 10 + 20);
    benchmark::DoNotOptimize(object.GetVisible(read_ts, &value));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MvccVisibilityLookup)
    ->Arg(2)
    ->Arg(8)
    ->Arg(64)
    ->ArgName("slots");

/// Explicit GC pass cost over a fully populated array.
void BM_MvccGarbageCollect(benchmark::State& state) {
  const int capacity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    MvccObject object(capacity);
    for (int i = 0; i < capacity; ++i) {
      (void)object.Install("payload-payload-pay!",
                           static_cast<Timestamp>(i + 1), 0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        object.GarbageCollect(static_cast<Timestamp>(capacity + 1)));
  }
}
BENCHMARK(BM_MvccGarbageCollect)->Arg(8)->Arg(64)->ArgName("slots");

/// Serialization round-trip of a populated MVCC object (the base-table
/// write-through payload).
void BM_MvccEncodeDecode(benchmark::State& state) {
  MvccObject object(8);
  for (int i = 0; i < 4; ++i) {
    (void)object.Install("twenty-byte-payload!",
                         static_cast<Timestamp>(i + 1), 0);
  }
  for (auto _ : state) {
    std::string blob;
    object.EncodeTo(&blob);
    auto decoded = MvccObject::Decode(blob, 8);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MvccEncodeDecode);

}  // namespace
}  // namespace streamsi

BENCHMARK_MAIN();
