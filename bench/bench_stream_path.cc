// Stream-path benchmark: end-to-end tuples/s through the partitioned
// parallel execution engine — VectorSource -> PartitionBy(N lanes) ->
// per-lane Batcher (commit-per-batch) -> per-lane ToTable (own
// StreamTxnContext) -> MergePartitions -> sink — against the full
// transactional pipeline with a durable group-commit log.
//
// The experiment variable is the lane count x bounded-queue depth under
// SyncMode::kSimulated (200us per sync, the paper's "fsync dominates"
// shape): one lane pays one sync per batch serially; N lanes commit
// concurrently and their durable records ride shared WAL batches
// (leader/follower group commit, PR 2), so end-to-end streaming throughput
// must rise monotonically 1 -> 4 lanes even on one core (sleep-dominated).
// A SyncMode::kNone row is included as the pure-CPU reference (on a 1-core
// container it reflects timesharing, not scaling).
//
// Lanes batch *after* the partitioner so each lane commits its own batches
// at its own pace. The tuple count is divisible by lanes x batch and
// routing is round-robin (value % lanes), so every lane emits the same
// number of boundaries and MergePartitions stays aligned.
//
// Output: one JSON document on stdout; bench/run_bench.sh archives it as
// BENCH_stream_path.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "core/group_commit_log.h"
#include "core/transaction_manager.h"
#include "core/transactional_table.h"
#include "storage/hash_backend.h"
#include "stream/stream.h"
#include "txn/protocol.h"

namespace streamsi {
namespace {

constexpr std::uint64_t kTuples = 61440;  // divisible by 8 lanes * 16 batch
constexpr std::size_t kBatch = 16;
constexpr std::uint64_t kSimulatedSyncMicros = 200;
constexpr std::uint64_t kKeySpace = 8192;

struct RunResult {
  double tuples_per_s = 0.0;
  double seconds = 0.0;
  std::uint64_t write_errors = 0;
  std::uint64_t stalls = 0;
};

RunResult RunStreamPath(SyncMode sync_mode, std::size_t lanes,
                        std::size_t queue_capacity, const std::string& dir) {
  StateContext context;
  const StateId state = context.RegisterState("stream_bench");
  context.RegisterGroup({state});

  StoreOptions store_options;
  store_options.write_through = false;  // isolate stream + commit-path cost
  VersionedStore store(state, "stream_bench",
                       std::make_unique<HashTableBackend>(), store_options);

  GroupCommitLog log(sync_mode, kSimulatedSyncMicros);
  if (!log.Open(dir + "/stream_commits.log").ok()) std::abort();

  auto protocol = MakeProtocol(ProtocolType::kMvcc, &context);
  TransactionManager manager(
      &context, protocol.get(),
      [&](StateId id) { return id == state ? &store : nullptr; }, &log,
      /*durable_group_log=*/true);
  TransactionalTable<std::uint64_t, std::uint64_t> table(&manager, &store);

  std::vector<StreamElement<std::uint64_t>> elements;
  elements.reserve(kTuples);
  for (std::uint64_t i = 0; i < kTuples; ++i) elements.emplace_back(i);

  Topology topology;
  auto* source =
      topology.Add<VectorSource<std::uint64_t>>(std::move(elements));
  PartitionBy<std::uint64_t>::Options options;
  options.queue_capacity = queue_capacity;
  options.policy = BackpressurePolicy::kBlock;  // lossless backpressure
  auto* partition = topology.Add<PartitionBy<std::uint64_t>>(
      source, lanes,
      [](const std::uint64_t& v) { return static_cast<std::size_t>(v); },
      options);
  auto* merge = topology.Add<MergePartitions<std::uint64_t>>(lanes);
  std::vector<ToTable<std::uint64_t, std::uint64_t, std::uint64_t>*> tails;
  for (std::size_t i = 0; i < lanes; ++i) {
    // Commit-per-batch per lane: each lane runs its own transactions, so N
    // lanes drive N concurrent committers into the group-commit WAL.
    auto* batcher =
        topology.Add<Batcher<std::uint64_t>>(partition->lane(i), kBatch);
    auto ctx = std::make_shared<StreamTxnContext>(&manager);
    auto* to_table =
        topology.Add<ToTable<std::uint64_t, std::uint64_t, std::uint64_t>>(
            batcher, table, ctx,
            [](const std::uint64_t& v) { return v % kKeySpace; },
            [](const std::uint64_t& v) { return v; });
    merge->ConnectInput(i, to_table);
    tails.push_back(to_table);
  }
  std::atomic<std::uint64_t> drained{0};
  topology.Add<ForEach<std::uint64_t>>(merge, [&](const std::uint64_t&) {
    drained.fetch_add(1, std::memory_order_relaxed);
  });

  const auto start = std::chrono::steady_clock::now();
  topology.Start();
  topology.Join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.tuples_per_s = static_cast<double>(kTuples) / result.seconds;
  for (auto* tail : tails) result.write_errors += tail->error_count();
  result.stalls = partition->stats().stalls;
  if (drained.load() != kTuples) std::abort();  // merge lost/duplicated

  (void)log.Close();
  (void)fsutil::RemoveFile(dir + "/stream_commits.log");
  return result;
}

}  // namespace
}  // namespace streamsi

int main() {
  using namespace streamsi;

  const std::string dir = "/tmp/streamsi_bench_stream_path";
  (void)fsutil::CreateDirIfMissing(dir);

  const std::size_t lane_counts[] = {1, 2, 4, 8};
  const std::size_t queue_depths[] = {64, 1024};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("{\n");
  std::printf("  \"tuples\": %llu,\n",
              static_cast<unsigned long long>(kTuples));
  std::printf("  \"batch_per_lane\": %zu,\n", kBatch);
  std::printf("  \"simulated_sync_micros\": %llu,\n",
              static_cast<unsigned long long>(kSimulatedSyncMicros));
  std::printf("  \"hardware_threads\": %d,\n", hw);
  std::printf("  \"benchmarks\": [\n");
  bool first = true;
  for (const std::size_t depth : queue_depths) {
    double base = 0.0;
    for (const std::size_t lanes : lane_counts) {
      const RunResult r =
          RunStreamPath(SyncMode::kSimulated, lanes, depth, dir);
      if (lanes == 1) base = r.tuples_per_s;
      if (!first) std::printf(",\n");
      first = false;
      std::printf(
          "    {\"name\": \"stream/simulated\", \"partitions\": %zu, "
          "\"queue_capacity\": %zu, \"tuples_per_s\": %.0f, "
          "\"seconds\": %.3f, \"write_errors\": %llu, \"stalls\": %llu, "
          "\"scaling\": %.2f}",
          lanes, depth, r.tuples_per_s, r.seconds,
          static_cast<unsigned long long>(r.write_errors),
          static_cast<unsigned long long>(r.stalls),
          base > 0 ? r.tuples_per_s / base : 0.0);
      std::fflush(stdout);
    }
  }
  // Pure-CPU reference (no sync latency to overlap — on a 1-core container
  // this measures timesharing, not parallel speedup).
  {
    double base = 0.0;
    for (const std::size_t lanes : lane_counts) {
      const RunResult r = RunStreamPath(SyncMode::kNone, lanes, 1024, dir);
      if (lanes == 1) base = r.tuples_per_s;
      std::printf(",\n    {\"name\": \"stream/none\", \"partitions\": %zu, "
                  "\"queue_capacity\": 1024, \"tuples_per_s\": %.0f, "
                  "\"seconds\": %.3f, \"write_errors\": %llu, "
                  "\"stalls\": %llu, \"scaling\": %.2f}",
                  lanes, r.tuples_per_s, r.seconds,
                  static_cast<unsigned long long>(r.write_errors),
                  static_cast<unsigned long long>(r.stalls),
                  base > 0 ? r.tuples_per_s / base : 0.0);
      std::fflush(stdout);
    }
  }
  std::printf("\n  ],\n");
  std::printf(
      "  \"notes\": \"stream/simulated must scale monotonically 1 -> 4 "
      "partitions: lane commits overlap their simulated sync latency and "
      "share WAL batches (PR 2 group commit) even on one core. "
      "stream/none is CPU-bound and reflects timesharing on this "
      "container.\"\n}\n");
  (void)fsutil::RemoveDirRecursive(dir);
  return 0;
}
