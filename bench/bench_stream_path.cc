// Stream-path benchmark: end-to-end tuples/s through the partitioned
// parallel execution engine — VectorSource -> PartitionBy(N lanes) ->
// per-lane Batcher (commit-per-batch) -> per-lane ToTable (own
// StreamTxnContext) -> MergePartitions -> sink — against the full
// transactional pipeline with a durable group-commit log.
//
// Three experiments:
//
//  1. stream/simulated — lane count x queue depth under SyncMode::kSimulated
//     (200us per sync, the paper's "fsync dominates" shape): one lane pays
//     one sync per batch serially; N lanes commit concurrently and their
//     durable records ride shared WAL batches (leader/follower group
//     commit, PR 2), so throughput must rise monotonically 1 -> 4 lanes
//     even on one core (sleep-dominated).
//
//  2. stream/none — the pure-CPU full pipeline, per-tuple (chunk=0) and
//     chunked (chunk in {1, 64, 256, 1024}). On this container the floor
//     is the COMMIT PATH, not the stream engine: a bare commit-per-16 txn
//     loop (no streaming at all) tops out around 2.2M tuples/s on one core
//     (write-set append ~53ns/tuple + commit ~320-390ns/key + WAL
//     write-through ~56ns/tuple). Chunking removes the transport cost but
//     cannot remove the commit cost, so the full-pipeline gain saturates
//     near that ceiling.
//
//  3. transport — the same topology with the transactional sink replaced
//     by a pure operator chain (Where -> merge -> ForEach). This isolates
//     the execution engine, the thing this refactor changes: per-tuple vs
//     chunked routing, handoff, batch framing and merge alignment. The
//     chunked rows report scaling vs the per-tuple row at the same lane
//     count; this is where the morsel path shows its real multiplier.
//
// Lanes batch *after* the partitioner so each lane commits its own batches
// at its own pace. The tuple count is divisible by lanes x batch and
// routing is round-robin (value % lanes), so every lane emits the same
// number of boundaries and MergePartitions stays aligned.
//
// Output: one JSON document on stdout; bench/run_bench.sh archives it as
// BENCH_stream_path.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "core/group_commit_log.h"
#include "core/transaction_manager.h"
#include "core/transactional_table.h"
#include "storage/hash_backend.h"
#include "stream/stream.h"
#include "txn/protocol.h"

namespace streamsi {
namespace {

constexpr std::uint64_t kTuples = 61440;  // divisible by 8 lanes * 16 batch
constexpr std::size_t kBatch = 16;
constexpr std::uint64_t kSimulatedSyncMicros = 200;
constexpr std::uint64_t kKeySpace = 8192;
// Transport runs have no commit work, so they need more tuples for a
// stable clock. Divisible by 8 lanes * 256 batch.
constexpr std::uint64_t kTransportTuples = 61440 * 16;
constexpr std::size_t kTransportBatch = 256;

struct RunResult {
  double tuples_per_s = 0.0;
  double seconds = 0.0;
  std::uint64_t write_errors = 0;
  std::uint64_t stalls = 0;
  double fill_ratio = 0.0;  ///< mean chunk fill across the lane builders
};

std::vector<StreamElement<std::uint64_t>> MakeElements(std::uint64_t count) {
  std::vector<StreamElement<std::uint64_t>> elements;
  elements.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) elements.emplace_back(i);
  return elements;
}

/// Full transactional pipeline. chunk == 0 is the classic per-tuple path.
RunResult RunStreamPath(SyncMode sync_mode, std::size_t lanes,
                        std::size_t queue_capacity, std::size_t chunk,
                        const std::string& dir,
                        std::uint64_t tuples = kTuples) {
  StateContext context;
  const StateId state = context.RegisterState("stream_bench");
  context.RegisterGroup({state});

  StoreOptions store_options;
  store_options.write_through = false;  // isolate stream + commit-path cost
  VersionedStore store(state, "stream_bench",
                       std::make_unique<HashTableBackend>(), store_options);

  GroupCommitLog log(sync_mode, kSimulatedSyncMicros);
  if (!log.Open(dir + "/stream_commits.log").ok()) std::abort();

  auto protocol = MakeProtocol(ProtocolType::kMvcc, &context);
  TransactionManager manager(
      &context, protocol.get(),
      [&](StateId id) { return id == state ? &store : nullptr; }, &log,
      /*durable_group_log=*/true);
  TransactionalTable<std::uint64_t, std::uint64_t> table(&manager, &store);

  Topology topology;
  SourceOptions source_options;
  source_options.chunk_capacity = chunk;
  auto* source = topology.Add<VectorSource<std::uint64_t>>(
      MakeElements(tuples), source_options);
  PartitionBy<std::uint64_t>::Options options;
  options.queue_capacity = queue_capacity;
  options.policy = BackpressurePolicy::kBlock;  // lossless backpressure
  options.chunk_capacity = chunk;
  auto* partition = topology.Add<PartitionBy<std::uint64_t>>(
      source, lanes,
      [](const std::uint64_t& v) { return static_cast<std::size_t>(v); },
      options);
  auto* merge = topology.Add<MergePartitions<std::uint64_t>>(lanes);
  std::vector<ToTable<std::uint64_t, std::uint64_t, std::uint64_t>*> tails;
  for (std::size_t i = 0; i < lanes; ++i) {
    // Commit-per-batch per lane: each lane runs its own transactions, so N
    // lanes drive N concurrent committers into the group-commit WAL.
    auto* batcher =
        topology.Add<Batcher<std::uint64_t>>(partition->lane(i), kBatch);
    auto ctx = std::make_shared<StreamTxnContext>(&manager);
    auto* to_table =
        topology.Add<ToTable<std::uint64_t, std::uint64_t, std::uint64_t>>(
            batcher, table, ctx,
            [](const std::uint64_t& v) { return v % kKeySpace; },
            [](const std::uint64_t& v) { return v; });
    merge->ConnectInput(i, to_table);
    tails.push_back(to_table);
  }
  std::atomic<std::uint64_t> drained{0};
  topology.Add<ForEach<std::uint64_t>>(merge, [&](const std::uint64_t&) {
    drained.fetch_add(1, std::memory_order_relaxed);
  });

  const auto start = std::chrono::steady_clock::now();
  topology.Start();
  topology.Join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.tuples_per_s = static_cast<double>(tuples) / result.seconds;
  for (auto* tail : tails) result.write_errors += tail->error_count();
  const OperatorStats pstats = partition->stats();
  result.stalls = pstats.stalls;
  result.fill_ratio = pstats.chunk_fill_ratio();
  if (drained.load() != tuples) std::abort();  // merge lost/duplicated

  (void)log.Close();
  (void)fsutil::RemoveFile(dir + "/stream_commits.log");
  return result;
}

/// Engine-isolated run: same source -> partition -> per-lane Batcher ->
/// merge -> sink shape, but no transactions, table or log. Measures the
/// stream execution engine itself.
RunResult RunTransport(std::size_t lanes, std::size_t queue_capacity,
                       std::size_t chunk) {
  Topology topology;
  SourceOptions source_options;
  source_options.chunk_capacity = chunk;
  auto* source = topology.Add<VectorSource<std::uint64_t>>(
      MakeElements(kTransportTuples), source_options);
  PartitionBy<std::uint64_t>::Options options;
  options.queue_capacity = queue_capacity;
  options.policy = BackpressurePolicy::kBlock;
  options.chunk_capacity = chunk;
  auto* partition = topology.Add<PartitionBy<std::uint64_t>>(
      source, lanes,
      [](const std::uint64_t& v) { return static_cast<std::size_t>(v); },
      options);
  auto* merge = topology.Add<MergePartitions<std::uint64_t>>(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    // Batch framing still runs (BOT/COMMIT every kTransportBatch tuples)
    // so merge alignment is exercised; the filter is the per-lane "work".
    auto* batcher = topology.Add<Batcher<std::uint64_t>>(
        partition->lane(i), kTransportBatch);
    auto* where = topology.Add<Where<std::uint64_t>>(
        batcher, [](const std::uint64_t& v) { return (v & 1023u) != 1023u; });
    merge->ConnectInput(i, where);
  }
  std::atomic<std::uint64_t> drained{0};
  topology.Add<ForEach<std::uint64_t>>(merge, [&](const std::uint64_t&) {
    drained.fetch_add(1, std::memory_order_relaxed);
  });

  const auto start = std::chrono::steady_clock::now();
  topology.Start();
  topology.Join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.tuples_per_s = static_cast<double>(kTransportTuples) / result.seconds;
  const OperatorStats pstats = partition->stats();
  result.stalls = pstats.stalls;
  result.fill_ratio = pstats.chunk_fill_ratio();
  const std::uint64_t expected =
      kTransportTuples - kTransportTuples / 1024;  // Where drops 1-in-1024
  if (drained.load() != expected) std::abort();
  return result;
}

/// Chunk-aware counting sink: absorbs whole chunks without a per-tuple
/// std::function call, so the scalar/kernel ratio measures the operators,
/// not the sink.
class CountingSink : public OperatorBase {
 public:
  using P = std::pair<std::uint64_t, std::uint64_t>;

  explicit CountingSink(Publisher<P>* input) {
    input->SubscribeWith(
        [this](const StreamElement<P>& e) {
          if (e.is_data()) count_.fetch_add(1, std::memory_order_relaxed);
        },
        [this](const ChunkView<P>& view) {
          count_.fetch_add(view.size(), std::memory_order_relaxed);
        });
  }

  std::uint64_t count() const { return count_.load(); }
  std::string_view name() const override { return "CountingSink"; }

 private:
  std::atomic<std::uint64_t> count_{0};
};

/// Bare publisher head: lets the timed loop hand pre-built chunk views
/// straight to the operator chain, so the columnar sweep measures the
/// operators alone — no source thread, no per-tuple chunker append.
class ChunkFeed : public OperatorBase, public Publisher<std::uint64_t> {
 public:
  std::string_view name() const override { return "ChunkFeed"; }
};

/// Kernel-isolated run: pre-chunked input -> Where -> GroupedAggregate ->
/// sink on the bench thread, no partitioner and no transactions. `kernel`
/// picks the vectorized operators (predicate kernel into a selection vector
/// + hash-partitioned aggregate) over the scalar row-chunk ones (the PR 8
/// path); the scaling column is the kernels' own multiplier at the same
/// chunk size. The workload is deliberately mixed-selectivity (exact 1-in-4
/// drop, scrambled values so group probes are random-access): the PR 8
/// row-chunk Where pays a std::function predicate call and a survivor copy
/// per tuple once a chunk has any rejection, and the row-chunk aggregate
/// pays a std::function key extraction plus an unordered_map probe per
/// tuple — the costs the selection vector and the three-pass grouped kernel
/// amortize. Exactly the gap this sweep exists to pin.
RunResult RunColumnarKernels(std::size_t chunk, bool kernel) {
  constexpr std::uint64_t kColumnarTuples = kTransportTuples * 4;
  constexpr int kPasses = 4;
  // Knuth multiplicative scramble (odd, = 1 mod 4): bijective, so the drop
  // rate is exactly 1-in-4 and the aggregate keys walk the 8192 groups in
  // large pseudo-random strides instead of sequentially.
  const auto pred = [](const std::uint64_t& v) { return (v & 3u) != 3u; };
  const auto key = [](const std::uint64_t& v) { return v & 8191u; };
  const auto fold = [](std::uint64_t& acc, const std::uint64_t& v) {
    acc += v;
  };

  std::vector<Chunk<std::uint64_t>> chunks;
  chunks.reserve((kColumnarTuples + chunk - 1) / chunk);
  for (std::uint64_t i = 0; i < kColumnarTuples;) {
    chunks.emplace_back(chunk);
    Chunk<std::uint64_t>& c = chunks.back();
    for (; i < kColumnarTuples && !c.full(); ++i) {
      c.Append(i * 2654435761u, static_cast<Timestamp>(i));
    }
  }

  Topology topology;
  auto* feed = topology.Add<ChunkFeed>();
  Publisher<std::pair<std::uint64_t, std::uint64_t>>* agg = nullptr;
  if (kernel) {
    auto* where = topology.Adopt(MakeVectorizedWhere<std::uint64_t>(feed,
                                                                    pred));
    agg = topology.Adopt(
        MakeVectorizedGroupedAggregate<std::uint64_t, std::uint64_t,
                                       std::uint64_t>(where, key,
                                                      std::uint64_t{0},
                                                      fold));
  } else {
    auto* where = topology.Add<Where<std::uint64_t>>(feed, pred);
    agg = topology.Add<
        GroupedAggregate<std::uint64_t, std::uint64_t, std::uint64_t>>(
        where, key, std::uint64_t{0}, fold);
  }
  auto* sink = topology.Add<CountingSink>(agg);

  const auto start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const Chunk<std::uint64_t>& c : chunks) feed->PublishChunk(c.view());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  const std::uint64_t delivered = kColumnarTuples * kPasses;
  RunResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.tuples_per_s = static_cast<double>(delivered) / result.seconds;
  const std::uint64_t expected =
      (kColumnarTuples - kColumnarTuples / 4) * kPasses;  // exact 1-in-4 drop
  if (sink->count() != expected) std::abort();
  return result;
}

void PrintRow(bool* first, const char* name, std::size_t lanes,
              std::size_t depth, std::size_t chunk, const RunResult& r,
              double base) {
  if (!*first) std::printf(",\n");
  *first = false;
  std::printf(
      "    {\"name\": \"%s\", \"partitions\": %zu, \"queue_capacity\": %zu, "
      "\"chunk\": %zu, \"tuples_per_s\": %.0f, \"seconds\": %.3f, "
      "\"write_errors\": %llu, \"stalls\": %llu, \"fill_ratio\": %.2f, "
      "\"scaling\": %.2f}",
      name, lanes, depth, chunk, r.tuples_per_s, r.seconds,
      static_cast<unsigned long long>(r.write_errors),
      static_cast<unsigned long long>(r.stalls), r.fill_ratio,
      base > 0 ? r.tuples_per_s / base : 0.0);
  std::fflush(stdout);
}

}  // namespace
}  // namespace streamsi

int main() {
  using namespace streamsi;

  const std::string dir = "/tmp/streamsi_bench_stream_path";
  (void)fsutil::CreateDirIfMissing(dir);

  const std::size_t lane_counts[] = {1, 2, 4, 8};
  const std::size_t chunk_sizes[] = {1, 64, 256, 1024};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("{\n");
  std::printf("  \"tuples\": %llu,\n",
              static_cast<unsigned long long>(kTuples));
  std::printf("  \"transport_tuples\": %llu,\n",
              static_cast<unsigned long long>(kTransportTuples));
  std::printf("  \"batch_per_lane\": %zu,\n", kBatch);
  std::printf("  \"simulated_sync_micros\": %llu,\n",
              static_cast<unsigned long long>(kSimulatedSyncMicros));
  std::printf("  \"hardware_threads\": %d,\n", hw);
  std::printf("  \"benchmarks\": [\n");
  bool first = true;

  // 1. Durable simulated-sync pipeline: lanes x queue depth, per-tuple.
  for (const std::size_t depth : {std::size_t{64}, std::size_t{1024}}) {
    double base = 0.0;
    for (const std::size_t lanes : lane_counts) {
      const RunResult r =
          RunStreamPath(SyncMode::kSimulated, lanes, depth, /*chunk=*/0, dir);
      if (lanes == 1) base = r.tuples_per_s;
      PrintRow(&first, "stream/simulated", lanes, depth, 0, r, base);
    }
  }

  // 2. Pure-CPU full pipeline: per-tuple lane sweep, then chunk-size sweep
  // at 8 lanes. scaling for the chunk rows is vs the per-tuple 8-lane row.
  // 8x the tuple count of the durable runs: at millions of tuples/s the
  // base workload finishes in tens of milliseconds, too short to measure.
  {
    constexpr std::uint64_t kNoneTuples = kTuples * 8;
    double base = 0.0;
    double base8 = 0.0;
    for (const std::size_t lanes : lane_counts) {
      const RunResult r = RunStreamPath(SyncMode::kNone, lanes, 1024,
                                        /*chunk=*/0, dir, kNoneTuples);
      if (lanes == 1) base = r.tuples_per_s;
      if (lanes == 8) base8 = r.tuples_per_s;
      PrintRow(&first, "stream/none", lanes, 1024, 0, r, base);
    }
    for (const std::size_t chunk : chunk_sizes) {
      const RunResult r =
          RunStreamPath(SyncMode::kNone, 8, 1024, chunk, dir, kNoneTuples);
      PrintRow(&first, "stream/none", 8, 1024, chunk, r, base8);
    }
  }

  // 3. Engine-isolated transport: per-tuple lane sweep, then chunk-size
  // sweep at 8 lanes. scaling for the chunk rows is vs the per-tuple
  // 8-lane row — the morsel path's true multiplier.
  {
    double base = 0.0;
    double base8 = 0.0;
    for (const std::size_t lanes : lane_counts) {
      const RunResult r = RunTransport(lanes, 1024, /*chunk=*/0);
      if (lanes == 1) base = r.tuples_per_s;
      if (lanes == 8) base8 = r.tuples_per_s;
      PrintRow(&first, "transport", lanes, 1024, 0, r, base);
    }
    for (const std::size_t chunk : chunk_sizes) {
      const RunResult r = RunTransport(8, 1024, chunk);
      PrintRow(&first, "transport", 8, 1024, chunk, r, base8);
    }
  }

  // 4. Kernel-isolated columnar sweep: the scalar row-chunk operators vs
  // the vectorized kernels at the same chunk size, one lane, no
  // transactions. scaling for the kernel rows is vs the scalar row at the
  // same chunk — the acceptance multiplier for the vectorized path.
  // Best-of-3 per variant: the columnar rows measure nanoseconds per
  // tuple, where one scheduler hiccup on a shared container can swing a
  // single run by 20%.
  const auto best_of = [](std::size_t chunk, bool kernel) {
    RunResult best = RunColumnarKernels(chunk, kernel);
    for (int rep = 0; rep < 2; ++rep) {
      const RunResult r = RunColumnarKernels(chunk, kernel);
      if (r.tuples_per_s > best.tuples_per_s) best = r;
    }
    return best;
  };
  for (const std::size_t chunk : chunk_sizes) {
    if (chunk == 1) continue;  // kernels need real chunks
    const RunResult scalar = best_of(chunk, /*kernel=*/false);
    PrintRow(&first, "columnar/scalar", 1, 0, chunk, scalar,
             scalar.tuples_per_s);
    const RunResult kernel = best_of(chunk, /*kernel=*/true);
    PrintRow(&first, "columnar/kernel", 1, 0, chunk, kernel,
             scalar.tuples_per_s);
  }

  std::printf("\n  ],\n");
  std::printf(
      "  \"notes\": \"stream/simulated must scale monotonically 1 -> 4 "
      "partitions: lane commits overlap their simulated sync latency and "
      "share WAL batches (PR 2 group commit) even on one core. "
      "stream/none chunk rows (chunk > 0) use the morsel path end to end; "
      "their ceiling on this 1-core container is the commit path, not the "
      "engine: a bare commit-per-16 loop with no streaming measures ~2.2M "
      "tuples/s (write-set ~53ns/tuple, commit ~320-390ns/key, WAL "
      "write-through ~56ns/tuple), so full-pipeline rows saturate near "
      "that floor. transport rows isolate the execution engine (no "
      "transactions): chunk rows report scaling vs the per-tuple 8-lane "
      "row and show the morsel path's real multiplier. columnar rows "
      "deliver pre-built chunks straight into the operator chain (no "
      "source thread, no chunker) and compare the scalar row-chunk "
      "Where+GroupedAggregate (per-tuple std::function predicate + "
      "survivor copy + unordered_map probe) against the vectorized kernels "
      "(one dispatch per chunk into a selection vector, three-pass grouped "
      "fold) on a mixed-selectivity workload: exact 1-in-4 drop, scrambled "
      "group keys. kernel rows must reach >= 2x their scalar row at "
      "chunk >= 256.\"\n}\n");
  (void)fsutil::RemoveDirRecursive(dir);
  return 0;
}
