#!/usr/bin/env bash
# Perf-trajectory harness: builds and runs the read-path, commit-path and
# stream-path microbenchmarks and the multi-writer commit benchmark,
# archiving the trajectory numbers as BENCH_read_path.json,
# BENCH_commit_path.json and BENCH_stream_path.json at the repo root so
# successive PRs can be compared. (The commit-path JSON embeds its own seed
# baseline for before/after comparison.)
#
# Usage: bench/run_bench.sh [build-dir]   (default: build)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DSTREAMSI_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_read_path bench_commit_path bench_stream_path \
             bench_scan_path bench_recovery_path bench_replication_path \
             bench_writers

echo "== bench_read_path (archived to BENCH_read_path.json) =="
"$BUILD_DIR/bench_read_path" | tee "$REPO_ROOT/BENCH_read_path.json"

echo "== bench_commit_path (archived to BENCH_commit_path.json) =="
"$BUILD_DIR/bench_commit_path" | tee "$REPO_ROOT/BENCH_commit_path.json"

echo "== bench_stream_path (archived to BENCH_stream_path.json) =="
"$BUILD_DIR/bench_stream_path" | tee "$REPO_ROOT/BENCH_stream_path.json"

echo "== bench_scan_path (archived to BENCH_scan_path.json) =="
"$BUILD_DIR/bench_scan_path" | tee "$REPO_ROOT/BENCH_scan_path.json"

echo "== bench_recovery_path (archived to BENCH_recovery_path.json) =="
"$BUILD_DIR/bench_recovery_path" | tee "$REPO_ROOT/BENCH_recovery_path.json"

echo "== bench_replication_path (archived to BENCH_replication_path.json) =="
"$BUILD_DIR/bench_replication_path" | tee "$REPO_ROOT/BENCH_replication_path.json"

echo "== bench_writers =="
# Keep the writer sweep short: it is context, not the archived trajectory.
"$BUILD_DIR/bench_writers" --benchmark_min_time=0.05 || true
